//! §4 — the Causal Broadcast protocol with implicit acknowledgements.
//!
//! Write operations and commit requests travel by **causal broadcast**, and
//! the vector clocks of deliveries are exposed to this layer (the paper
//! names this as a requirement on the communication layer). Two ideas from
//! the paper replace the explicit vote round of §3:
//!
//! 1. **Implicit positive acknowledgements.** After a site `q` delivers
//!    `commit-req(T)`, *any* subsequent message from `q` carries a vector
//!    clock whose `T.origin` component covers the commit request — proof
//!    that `q` saw it. A site commits `T` once it holds such proof from
//!    every view member and has delivered no NACK. Quiet sites would stall
//!    this, so sites with undecided transactions emit **null messages**
//!    (heartbeats) — the paper's suggested mitigation, measured in
//!    experiment F4.
//! 2. **Early conflict detection.** Two write sets whose vector clocks are
//!    *concurrent* conflict irreconcilably if they overlap; every site
//!    detects this independently from the exposed clocks and aborts the
//!    younger transaction — no communication needed (a NACK is still sent
//!    to accelerate the abort at sites that have not yet seen both).
//!
//! Safety of the implicit ack (why no site can commit `T` and later learn
//! of a concurrent conflicting winner): any transaction concurrent with `T`
//! was broadcast by its origin *before* that origin delivered
//! `commit-req(T)`, hence before the origin's acknowledging message; causal
//! (FIFO per sender) delivery puts those writes before the ack at every
//! site. Collecting acks from the full view therefore closes `T`'s
//! concurrency window — the commit evaluation sees every candidate.
//!
//! Conflicts *ordered* by causality queue in causal order (identical at all
//! sites, and acyclic — so no deadlock). Broadcast transactions are never
//! wounded site-locally here: unlike §3 there is no vote with which to
//! publish a wound, so a site-local wound could contradict an
//! already-emitted implicit ack.

use crate::metrics::AbortReason;
use crate::payload::{Payload, ReplicaMsg, TxnPriority};
use crate::protocols::{Effects, RetransmitBackoff};
use crate::state::{EventBuf, LocalEvent, SiteState};
use bcastdb_broadcast::causal::{self, CausalBcast};
use bcastdb_broadcast::VectorClock;
use bcastdb_db::{Key, TxnId};
use bcastdb_sim::{SimTime, SiteId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

#[derive(Debug)]
enum Work {
    Event(LocalEvent),
    Deliver(causal::Delivery<Arc<Payload>>),
    /// All write operations of a local transaction are out (and their
    /// self-deliveries processed): gate against local readers, then either
    /// broadcast the commit request or give up.
    FinishWrite(TxnId),
}

/// Causal-protocol bookkeeping for one broadcast transaction.
#[derive(Debug, Clone, Default)]
struct CbTxn {
    /// Vector clock of each delivered write operation, by key. Concurrency
    /// is classified **per operation**: a transaction's operations are
    /// broadcast individually and are not a causal unit — one op can
    /// causally precede a peer while the next is concurrent with it.
    write_ops: BTreeMap<Key, VectorClock>,
    /// `commit-req`'s component at the origin; acks must cover this.
    cr_seq: Option<u64>,
    /// Sites whose delivery of the commit request is proven.
    acked: BTreeSet<SiteId>,
    /// Sites that explicitly rejected the transaction.
    nacked: BTreeSet<SiteId>,
    /// Commit decided; applied when locks are all granted.
    commit_pending: bool,
}

/// The causal-broadcast replication protocol at one site.
///
/// The broadcast engine is instantiated with `Arc<Payload>` so its archive,
/// pending set, and per-destination fan-out share one payload allocation
/// per broadcast instead of deep-cloning it N−1 times.
#[derive(Debug)]
pub struct CausalProto {
    cb: CausalBcast<Arc<Payload>>,
    view: BTreeSet<SiteId>,
    info: BTreeMap<TxnId, CbTxn>,
    /// Emit a null message on ticks while transactions are undecided.
    pub null_messages: bool,
    /// Speculative fast commit: when the failure detector suspects a view
    /// member, close the implicit-acknowledgement wait from the surviving
    /// quorum instead of the full view — see `try_decide`.
    pub fast_commit: bool,
    /// View members the local failure detector currently suspects
    /// (refreshed by the engine on every membership tick).
    suspected: BTreeSet<SiteId>,
    /// Loss-recovery mode: retransmit archived messages to lagging peers.
    recover_losses: bool,
    /// Paced write phases: next operation index per local transaction.
    writing: BTreeMap<TxnId, usize>,
    /// This site's clock at its most recent broadcast: the evidence other
    /// sites hold about what we have delivered. If it does not cover a
    /// delivered commit request, our implicit acknowledgement has not been
    /// published yet and a null message is due.
    last_bcast_vc: VectorClock,
    /// Reusable work queue: taken at each protocol entry point and
    /// handed back (empty) by `pump`, so steady-state message handling
    /// never allocates a fresh queue.
    idle_work: VecDeque<Work>,
    /// Transactions whose commit request is delivered but whose outcome is
    /// not yet in `st.decided` — the only transactions a new implicit
    /// acknowledgement can advance. `info` grows for the whole run (its
    /// write-op clocks stay relevant to concurrency classification), so
    /// the per-delivery ack scan walks this small index instead of the
    /// full map; entries are dropped lazily once the decision lands.
    ack_waiting: BTreeSet<TxnId>,
    /// Per-origin maximum commit-request sequence delivered so far.
    /// `cr_seq` values from one origin only grow, so "some delivered
    /// commit request is not covered by our last broadcast" reduces to
    /// comparing this clock against `last_bcast_vc` — O(n) per tick
    /// instead of a scan over every transaction ever seen.
    max_cr_seq: VectorClock,
    /// Transactions with at least one delivered write operation and no
    /// decision yet — the candidate set for per-key concurrency
    /// classification on each delivered write. Pruned lazily as
    /// decisions land, like [`CausalProto::ack_waiting`].
    open_writers: BTreeSet<TxnId>,
    /// Cadence control of the periodic null/gap-report broadcast (fires
    /// every tick unless [`CausalProto::enable_backoff`] was called).
    backoff: RetransmitBackoff,
    /// `(sum of remote clock components, pending holes)` at the last tick —
    /// the progress signal that resets the backoff. Our own component is
    /// excluded: each null we send self-delivers, and counting that as
    /// progress would keep the cadence pinned at every tick.
    last_progress: (u64, usize),
}

impl CausalProto {
    /// Creates the protocol instance for site `me` of `n`.
    pub fn new(me: SiteId, n: usize) -> Self {
        CausalProto {
            // Without loss recovery nobody ever asks this engine for
            // retransmissions, so skip the per-message archive clone.
            cb: CausalBcast::new(me, n).without_archive(),
            view: (0..n).map(SiteId).collect(),
            info: BTreeMap::new(),
            null_messages: true,
            fast_commit: false,
            suspected: BTreeSet::new(),
            recover_losses: false,
            writing: BTreeMap::new(),
            last_bcast_vc: VectorClock::new(n),
            idle_work: VecDeque::new(),
            ack_waiting: BTreeSet::new(),
            max_cr_seq: VectorClock::new(n),
            open_writers: BTreeSet::new(),
            backoff: RetransmitBackoff::new(me),
            last_progress: (0, 0),
        }
    }

    /// Switches the periodic null/gap-report broadcast from fire-every-tick
    /// to bounded exponential backoff with deterministic jitter.
    pub fn enable_backoff(&mut self) {
        self.backoff.enable();
    }

    /// Creates the protocol with eager relaying and loss recovery enabled.
    pub fn new_with_relay(me: SiteId, n: usize) -> Self {
        let mut p = Self::new(me, n);
        p.cb = CausalBcast::new(me, n).with_relay();
        p.recover_losses = true;
        p
    }

    /// True while this site still owes the cluster a message: either a
    /// transaction known here is undecided, or a delivered commit request
    /// has not yet been covered by any of our broadcasts (its implicit
    /// acknowledgement is unpublished). Drives the engine's tick arming.
    pub fn needs_ticks(&self, st: &SiteState) -> bool {
        if !self.null_messages {
            return false;
        }
        st.has_undecided()
            || self.has_unpublished_ack()
            // Loss recovery: holes in the causal stream block deliveries we
            // may not even know about; keep advertising our clock so peers
            // can fill the gaps.
            || (self.recover_losses && self.cb.pending_len() > 0)
    }

    fn has_unpublished_ack(&self) -> bool {
        self.max_cr_seq
            .iter()
            .any(|(origin, k)| self.last_bcast_vc.get(origin) < k)
    }

    /// The causal engine's delivered-messages clock (state transfer).
    pub fn clock(&self) -> VectorClock {
        self.cb.clock().clone()
    }

    /// Resumes a recovered site from a donor's causal clock and view.
    /// Assumes a quiet moment: in-flight bookkeeping is dropped (the
    /// transferred store and decision map carry the outcomes).
    pub fn resume(&mut self, donor_clock: &VectorClock, view: BTreeSet<SiteId>) {
        self.cb.resume_from(donor_clock);
        self.last_bcast_vc = self.cb.clock().clone();
        self.info.clear();
        self.ack_waiting.clear();
        self.max_cr_seq = VectorClock::new(self.max_cr_seq.len());
        self.open_writers.clear();
        self.view = view;
        self.suspected.clear();
    }

    /// Refreshes the failure detector's suspicion set and re-evaluates
    /// every transaction still waiting on implicit acknowledgements: a
    /// fresh suspicion may let the fast-commit rule close an ack wait
    /// that the suspect would never complete.
    pub fn on_suspect(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        suspected: &BTreeSet<SiteId>,
    ) {
        if self.suspected == *suspected {
            return;
        }
        self.suspected = suspected.clone();
        if self.suspected.is_empty() {
            return;
        }
        let waiting: Vec<TxnId> = self.ack_waiting.iter().copied().collect();
        let mut work = std::mem::take(&mut self.idle_work);
        for txn in waiting {
            self.try_decide(st, now, txn, &mut work);
        }
        self.pump(st, fx, now, work);
    }

    /// Handles events produced outside the protocol.
    pub fn handle_events(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        events: EventBuf,
    ) {
        let work = events.into_iter().map(Work::Event).collect();
        self.pump(st, fx, now, work);
    }

    /// Handles a retransmitted wire: identical processing, but never
    /// treated as a live gap report (its clock is historical).
    pub fn on_retrans_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: causal::Wire<Arc<Payload>>,
    ) {
        let out = self.cb.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        self.route(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Handles an incoming causal-broadcast wire message.
    pub fn on_wire(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        from: SiteId,
        wire: causal::Wire<Arc<Payload>>,
    ) {
        // In loss-recovery mode a *null* message doubles as a gap report:
        // its clock reveals what its origin had delivered, so ship it
        // anything we have that it lacks. Only direct (unrelayed,
        // unretransmitted) nulls trigger this — reacting to every wire
        // would let stale retransmitted clocks solicit retransmissions of
        // their own, a storm that never drains.
        if self.recover_losses && from == wire.id.origin && matches!(*wire.payload, Payload::Null) {
            // Only our *own* missing messages are retransmitted from here:
            // with every site answering for every gap, a lossy cluster
            // floods itself — one authoritative responder per message is
            // enough (the origin always has its own archive).
            let me = self.cb.me();
            for w in self.cb.retransmissions_for(&wire.vc, 16) {
                if w.id.origin == me {
                    fx.send_to(from, ReplicaMsg::CRetrans(w));
                }
            }
        }
        let out = self.cb.on_wire(from, wire);
        let mut work = std::mem::take(&mut self.idle_work);
        self.route(fx, out, &mut work);
        self.pump(st, fx, now, work);
    }

    /// Periodic tick: emit a null message while this site owes the cluster
    /// evidence — an unpublished implicit acknowledgement, or liveness for
    /// transactions still undecided here (the paper's keep-alive
    /// mitigation for quiet sites).
    pub fn on_tick(&mut self, st: &mut SiteState, fx: &mut Effects, now: SimTime) {
        if self.null_messages
            && (st.has_undecided()
                || self.has_unpublished_ack()
                || (self.recover_losses && self.cb.pending_len() > 0))
        {
            // Progress check for the backoff cadence: a remote clock
            // component moving or a pending hole closing means the last
            // solicitation (or regular traffic) worked — go back to
            // every-tick.
            let me = self.cb.me();
            let remote: u64 = self
                .cb
                .clock()
                .iter()
                .filter(|&(s, _)| s != me)
                .map(|(_, k)| k)
                .sum();
            let progress = (remote, self.cb.pending_len());
            if progress != self.last_progress {
                self.backoff.reset();
                self.last_progress = progress;
            }
            if !self.backoff.due() {
                return;
            }
            let mut work = std::mem::take(&mut self.idle_work);
            self.bcast(fx, Payload::Null, &mut work);
            self.pump(st, fx, now, work);
        }
    }

    /// Installs a new view: acks are needed from surviving members only;
    /// transactions from departed origins abort.
    pub fn set_view(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        members: BTreeSet<SiteId>,
    ) {
        self.view = members;
        let undecided: Vec<TxnId> = st
            .remote
            .keys()
            .filter(|t| !st.decided.contains_key(t))
            .copied()
            .collect();
        let mut work = std::mem::take(&mut self.idle_work);
        for txn in undecided {
            if !self.view.contains(&txn.origin) {
                let mut events = EventBuf::new();
                st.apply_remote_abort(txn, AbortReason::ViewChange, now, &mut events);
                work.extend(events.into_iter().map(Work::Event));
            } else {
                self.try_decide(st, now, txn, &mut work);
            }
        }
        self.pump(st, fx, now, work);
    }

    fn bcast(&mut self, fx: &mut Effects, payload: Payload, work: &mut VecDeque<Work>) {
        // The single payload allocation of this broadcast: every wire copy
        // and archive entry from here on is a refcount bump.
        let (_, out) = self.cb.broadcast(Arc::new(payload));
        self.last_bcast_vc.copy_from(self.cb.clock());
        self.route(fx, out, work);
    }

    fn route(
        &mut self,
        fx: &mut Effects,
        out: causal::Output<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        for ob in out.outbound {
            fx.send(ob.dest, ReplicaMsg::C(ob.wire));
        }
        for d in out.deliveries {
            work.push_back(Work::Deliver(d));
        }
    }

    fn pump(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        mut work: VecDeque<Work>,
    ) {
        while let Some(item) = work.pop_front() {
            match item {
                Work::Event(ev) => self.on_event(st, fx, now, ev, &mut work),
                Work::Deliver(d) => self.on_deliver(st, fx, now, d, &mut work),
                Work::FinishWrite(id) => self.finish_write(st, fx, now, id, &mut work),
            }
        }
        // The queue is empty again: hand it back for the next entry point.
        self.idle_work = work;
    }

    fn on_event(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        ev: LocalEvent,
        work: &mut VecDeque<Work>,
    ) {
        match ev {
            LocalEvent::ReadsComplete(id) => self.start_write_phase(st, fx, id, work),
            LocalEvent::RemotePrepared(id) => {
                // Locks complete: if the commit was already decided, apply.
                if self.info.get(&id).is_some_and(|i| i.commit_pending) {
                    let mut events = EventBuf::new();
                    st.apply_commit(id, now, &mut events);
                    work.extend(events.into_iter().map(Work::Event));
                }
            }
            LocalEvent::RemoteDoomed(..) => {
                // Cannot happen: wound_remote is disabled for this protocol
                // (site-local wounds cannot be published without votes).
                debug_assert!(
                    false,
                    "causal protocol must not doom broadcast transactions"
                );
            }
            LocalEvent::RemoteKeyGranted(..) => {}
            LocalEvent::ReadPaused(id) => fx.pauses.push(id),
        }
    }

    fn start_write_phase(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if !st.local.contains_key(&id) {
            return;
        }
        if st.think.is_zero() {
            self.emit_write_step(st, fx, id, usize::MAX, work);
        } else {
            self.writing.insert(id, 0);
            self.emit_write_step(st, fx, id, 1, work);
            if self.writing.contains_key(&id) {
                fx.write_pauses.push(id);
            }
        }
    }

    /// Resumes a paced write phase (next step after think time).
    pub fn continue_write(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
    ) {
        if st.decided.contains_key(&id) || !st.local.contains_key(&id) {
            self.writing.remove(&id);
            return;
        }
        let mut work = std::mem::take(&mut self.idle_work);
        self.emit_write_step(st, fx, id, 1, &mut work);
        if self.writing.contains_key(&id) {
            fx.write_pauses.push(id);
        }
        self.pump(st, fx, now, work);
    }

    /// Broadcasts up to `budget` write operations, then the commit request
    /// once the set is out (causal order keeps them sequenced everywhere).
    fn emit_write_step(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        id: TxnId,
        budget: usize,
        work: &mut VecDeque<Work>,
    ) {
        let Some(local) = st.local.get(&id) else {
            self.writing.remove(&id);
            return;
        };
        let prio = local.prio;
        let writes = local.spec.writes();
        let n_writes = writes.len();
        let start = self.writing.get(&id).copied().unwrap_or(0);
        let end = start.saturating_add(budget).min(n_writes);
        for (index, op) in writes.iter().enumerate().take(end).skip(start) {
            self.bcast(
                fx,
                Payload::Write {
                    txn: id,
                    prio,
                    op: op.clone(),
                    index,
                    of: n_writes,
                },
                work,
            );
        }
        if end >= n_writes {
            self.writing.remove(&id);
            // The commit request is NOT broadcast here: the self-deliveries
            // of our own write operations (queued ahead in the work queue)
            // may detect a concurrent conflict and doom this transaction,
            // and the origin's reader gate must also run first. Once a
            // remote site delivers the commit request it may decide
            // immediately (with N = 2 its ack set completes on the spot),
            // so every origin-side veto must precede the request on the
            // wire.
            work.push_back(Work::FinishWrite(id));
        } else {
            self.writing.insert(id, end);
        }
    }

    /// Final step of a write phase: runs the origin-side reader gate and,
    /// if the transaction is still viable, broadcasts the commit request.
    fn finish_write(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        id: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if st.decided.contains_key(&id) {
            return; // doomed by early conflict detection meanwhile
        }
        // Origin-side gate: settle conflicts with our own local readers
        // *before* the commit request exists anywhere.
        self.gate_local_readers(st, fx, now, id, work);
        if st.decided.contains_key(&id) {
            return; // the gate vetoed us (read-only conflict)
        }
        let Some(local) = st.local.get(&id) else {
            return;
        };
        let prio = local.prio;
        let n_writes = local.spec.writes().len();
        st.trace_commit_req_out(id, now);
        self.bcast(
            fx,
            Payload::CommitReq {
                txn: id,
                prio,
                n_writes,
                read_versions: Vec::new(),
                write_versions: Vec::new(),
            },
            work,
        );
    }

    fn on_deliver(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        d: causal::Delivery<Arc<Payload>>,
        work: &mut VecDeque<Work>,
    ) {
        let sender = d.id.origin;
        // A NACK must take effect before the same message is credited as
        // its sender's implicit acknowledgement — otherwise the NACK's own
        // clock could complete the ack set and commit the transaction it
        // rejects.
        if let Payload::Nack { txn, site } = &*d.payload {
            self.info.entry(*txn).or_default().nacked.insert(*site);
        }
        // Every delivery is a potential implicit acknowledgement: the
        // sender's clock proves which commit requests it had delivered.
        self.absorb_implicit_acks(st, now, sender, &d.vc, work);

        match &*d.payload {
            Payload::Write {
                txn, prio, op, of, ..
            } => {
                self.on_write(st, fx, now, *txn, *prio, op.clone(), *of, &d.vc, work);
            }
            &Payload::CommitReq {
                txn,
                prio,
                n_writes,
                ..
            } => {
                if st.decided.contains_key(&txn) {
                    return;
                }
                let entry = st.remote_entry(txn, prio);
                entry.commit_req_seen = true;
                entry.n_writes = Some(n_writes);
                let info = self.info.entry(txn).or_default();
                let cr_seq = d.vc.get(txn.origin);
                info.cr_seq = Some(cr_seq);
                if cr_seq > self.max_cr_seq.get(txn.origin) {
                    self.max_cr_seq.set(txn.origin, cr_seq);
                }
                self.ack_waiting.insert(txn);
                // The sender trivially acknowledged its own request, and we
                // just delivered it ourselves.
                info.acked.insert(txn.origin);
                info.acked.insert(st.me);
                // THE GATE. From this instant on, our outgoing traffic is an
                // implicit YES — so any conflict with a live local reader
                // must be settled *now*, while no other site can yet hold
                // our acknowledgement (everything we broadcast so far
                // causally precedes this commit request):
                //  - a read-only reader on one of the writer's keys vetoes
                //    the writer (explicit NACK) — read-only transactions are
                //    never aborted in this protocol;
                //  - an update reader still in its read phase is wounded
                //    (purely local, always safe);
                //  - an update reader that already broadcast its own writes
                //    vetoes the writer too: its reads are validated by the
                //    locks it holds until its own commitment.
                self.gate_local_readers(st, fx, now, txn, work);
                self.try_decide(st, now, txn, work);
            }
            &Payload::Nack { txn, site } => {
                self.info.entry(txn).or_default().nacked.insert(site);
                self.try_decide(st, now, txn, work);
            }
            Payload::Null => {}
            Payload::Vote { .. } | Payload::AbortDecision { .. } => {
                // Not used by this protocol.
            }
        }
    }

    /// Records implicit acks proven by a message from `sender` stamped
    /// `vc`, and re-evaluates the transactions whose ack sets changed.
    fn absorb_implicit_acks(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        sender: SiteId,
        vc: &VectorClock,
        work: &mut VecDeque<Work>,
    ) {
        // Walk the undecided index, not the full `info` map: transactions
        // whose commit request has not been delivered have no ack set to
        // advance, and decided ones (pruned lazily here) are settled.
        let mut candidates: Vec<TxnId> = Vec::new();
        let mut settled: Vec<TxnId> = Vec::new();
        for &txn in &self.ack_waiting {
            if st.decided.contains_key(&txn) {
                settled.push(txn);
                continue;
            }
            let Some(info) = self.info.get(&txn) else {
                settled.push(txn);
                continue;
            };
            if info
                .cr_seq
                .is_some_and(|k| vc.get(txn.origin) >= k && !info.acked.contains(&sender))
            {
                candidates.push(txn);
            }
        }
        for txn in settled {
            self.ack_waiting.remove(&txn);
        }
        for txn in candidates {
            self.info
                .get_mut(&txn)
                .expect("candidate")
                .acked
                .insert(sender);
            self.try_decide(st, now, txn, work);
        }
    }

    /// Handles a delivered write: classify against other broadcast
    /// transactions, abort concurrent losers, then lock.
    #[allow(clippy::too_many_arguments)]
    fn on_write(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        txn: TxnId,
        prio: TxnPriority,
        op: bcastdb_db::WriteOp,
        of: usize,
        vc: &VectorClock,
        work: &mut VecDeque<Work>,
    ) {
        self.info
            .entry(txn)
            .or_default()
            .write_ops
            .insert(op.key.clone(), vc.clone());
        self.open_writers.insert(txn);
        // Early conflict detection: another *operation* on the same key
        // whose clock is concurrent with this one means the two
        // transactions conflict irreconcilably. Only undecided writers can
        // conflict, so walk the `open_writers` index (pruning what has
        // been decided since) rather than every transaction in `st.remote`.
        let mut peers: Vec<(TxnId, TxnPriority)> = Vec::new();
        let mut settled: Vec<TxnId> = Vec::new();
        for &peer in &self.open_writers {
            if peer == txn {
                continue;
            }
            if st.decided.contains_key(&peer) {
                settled.push(peer);
                continue;
            }
            let Some(entry) = st.remote.get(&peer) else {
                continue;
            };
            let Some(pinfo) = self.info.get(&peer) else {
                continue;
            };
            if let Some(pvc) = pinfo.write_ops.get(&op.key) {
                if pvc.concurrent_with(vc) {
                    peers.push((peer, entry.prio));
                }
            }
        }
        for peer in settled {
            self.open_writers.remove(&peer);
        }
        let mut doomed_self = false;
        for (peer, peer_prio) in peers {
            let loser = if prio.older_than(&peer_prio) {
                peer
            } else {
                txn
            };
            if loser == txn {
                doomed_self = true;
            }
            self.abort_with_nack(st, fx, now, loser, work);
        }
        if doomed_self || st.decided.contains_key(&txn) {
            return; // no point acquiring locks for a dead transaction
        }
        let mut events = EventBuf::new();
        st.deliver_write_op(txn, prio, op, of, now, &mut events);
        work.extend(events.into_iter().map(Work::Event));
    }

    /// Settles conflicts between a commit-requesting writer and local
    /// readers before this site's implicit acknowledgement can circulate.
    fn gate_local_readers(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        use bcastdb_db::lock::LockMode;
        let write_keys: Vec<Key> = st
            .remote
            .get(&txn)
            .map(|e| e.ops.iter().map(|o| o.key.clone()).collect())
            .unwrap_or_default();
        let mut nack_writer = false;
        let mut wound: Vec<TxnId> = Vec::new();
        for key in &write_keys {
            for (holder, mode) in st.locks.holders(key) {
                if holder == txn || mode != LockMode::Shared {
                    continue;
                }
                let Some(local) = st.local.get(&holder) else {
                    continue; // not a local transaction (or already gone)
                };
                if local.spec.is_read_only() {
                    nack_writer = true;
                } else if matches!(local.phase, crate::state::LocalPhase::AcquiringReads { .. }) {
                    wound.push(holder);
                } else {
                    // Write phase: its held read locks validate its reads.
                    nack_writer = true;
                }
            }
        }
        for reader in wound {
            let mut events = EventBuf::new();
            st.abort_local(reader, AbortReason::Wounded, now, &mut events);
            work.extend(events.into_iter().map(Work::Event));
        }
        if nack_writer {
            self.abort_with_nack(st, fx, now, txn, work);
        }
    }

    /// Aborts `txn` locally (the deterministic rule makes every site reach
    /// the same verdict) and broadcasts a NACK to accelerate the others.
    fn abort_with_nack(
        &mut self,
        st: &mut SiteState,
        fx: &mut Effects,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if st.decided.contains_key(&txn) {
            return;
        }
        let already_nacked = self
            .info
            .get(&txn)
            .is_some_and(|i| i.nacked.contains(&st.me));
        if !already_nacked {
            self.info.entry(txn).or_default().nacked.insert(st.me);
            let site = st.me;
            st.trace_vote(txn, false, now);
            self.bcast(fx, Payload::Nack { txn, site }, work);
        }
        let mut events = EventBuf::new();
        st.apply_remote_abort(txn, AbortReason::ConcurrentConflict, now, &mut events);
        work.extend(events.into_iter().map(Work::Event));
    }

    /// Commits `txn` if (a) acks cover the view, (b) nobody NACKed, and
    /// (c) the deterministic concurrency evaluation finds no older
    /// concurrent conflicting peer. Aborts on NACK.
    fn try_decide(
        &mut self,
        st: &mut SiteState,
        now: SimTime,
        txn: TxnId,
        work: &mut VecDeque<Work>,
    ) {
        if st.decided.contains_key(&txn) {
            return;
        }
        let Some(info) = self.info.get(&txn) else {
            return;
        };
        if !info.nacked.is_empty() {
            let mut events = EventBuf::new();
            st.apply_remote_abort(txn, AbortReason::ConcurrentConflict, now, &mut events);
            work.extend(events.into_iter().map(Work::Event));
            return;
        }
        if info.cr_seq.is_none() {
            return;
        }
        let full_view_acked = self.view.iter().all(|s| info.acked.contains(s));
        // Speculative fast path: every member whose acknowledgement is
        // still missing is suspected crashed, and the surviving ackers are
        // a strict majority of the view. Their acks close the concurrency
        // window for every *surviving* origin (causal order puts an
        // origin's concurrent writes before its ack), and anything the
        // suspect broadcast before falling silent arrived long ago — the
        // suspicion timeout dwarfs the link latency. So the deterministic
        // evaluation below sees every candidate, exactly as if the view
        // change evicting the suspect had already been installed.
        let fast = !full_view_acked
            && self.fast_commit
            && !self.suspected.is_empty()
            && self
                .view
                .iter()
                .all(|s| info.acked.contains(s) || self.suspected.contains(s))
            && 2 * self.view.iter().filter(|s| info.acked.contains(s)).count() > self.view.len();
        if !full_view_acked && !fast {
            return;
        }
        let Some(entry) = st.remote.get(&txn) else {
            return;
        };
        if entry.n_writes != Some(entry.ops.len()) {
            return; // write set incomplete (cannot happen with FIFO, but be safe)
        }
        // Deterministic evaluation: the ack set closes the concurrency
        // window, so every concurrent conflicting candidate operation is
        // already delivered here. An older peer with a same-key
        // operation concurrent with ours → we abort.
        let my_ops = &info.write_ops;
        let my_prio = entry.prio;
        let loses = self.info.iter().any(|(peer, pinfo)| {
            if *peer == txn {
                return false;
            }
            let Some(pentry) = st.remote.get(peer) else {
                return false;
            };
            pentry.prio.older_than(&my_prio)
                && my_ops.iter().any(|(key, my_vc)| {
                    pinfo
                        .write_ops
                        .get(key)
                        .is_some_and(|pvc| pvc.concurrent_with(my_vc))
                })
        });
        let mut events = EventBuf::new();
        if loses {
            st.trace_decided(txn, false, now);
            st.apply_remote_abort(txn, AbortReason::ConcurrentConflict, now, &mut events);
        } else {
            // The implicit-acknowledgement wait ends here: the ack set is
            // complete and the verdict is fixed, whether or not the lock
            // queue lets us apply yet.
            if fast {
                st.trace_fast_decide(txn, now);
            }
            st.trace_decided(txn, true, now);
            if st.remote.get(&txn).expect("present").fully_prepared() {
                st.apply_commit(txn, now, &mut events);
            } else {
                // Application waits for the lock queue (causal order
                // guarantees every site installs in the same order).
                self.info.get_mut(&txn).expect("present").commit_pending = true;
            }
        }
        work.extend(events.into_iter().map(Work::Event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ConflictPolicy;
    use bcastdb_broadcast::msg::expand_dest;
    use bcastdb_db::TxnSpec;
    use std::collections::VecDeque as Q;

    struct Rig {
        protos: Vec<CausalProto>,
        states: Vec<SiteState>,
        wires: Q<(SiteId, SiteId, ReplicaMsg)>,
    }

    impl Rig {
        fn new(n: usize) -> Rig {
            let mut states: Vec<SiteState> = (0..n)
                .map(|i| SiteState::new(SiteId(i), n, ConflictPolicy::WoundWait))
                .collect();
            for st in states.iter_mut() {
                st.wound_remote = false;
                st.rank_by_delivery = true;
            }
            Rig {
                protos: (0..n).map(|i| CausalProto::new(SiteId(i), n)).collect(),
                states,
                wires: Q::new(),
            }
        }

        fn absorb(&mut self, me: SiteId, fx: Effects) {
            let n = self.protos.len();
            for (dest, msg) in fx.sends {
                for to in expand_dest(dest, me, n) {
                    if to != me {
                        self.wires.push_back((me, to, msg.clone()));
                    }
                }
            }
        }

        fn submit(&mut self, site: usize, ts: u64, spec: TxnSpec) -> TxnId {
            let mut fx = Effects::new();
            let (id, events) = self.states[site].begin_txn(SimTime::from_micros(ts), spec);
            self.protos[site].handle_events(&mut self.states[site], &mut fx, SimTime::ZERO, events);
            self.absorb(SiteId(site), fx);
            id
        }

        fn tick_all(&mut self) {
            for i in 0..self.protos.len() {
                let mut fx = Effects::new();
                self.protos[i].on_tick(&mut self.states[i], &mut fx, SimTime::from_micros(50));
                self.absorb(SiteId(i), fx);
            }
        }

        fn settle(&mut self) {
            // Alternate wire delivery with null ticks until both drain: the
            // implicit acks need at least one message from every site.
            for _ in 0..64 {
                while let Some((from, to, msg)) = self.wires.pop_front() {
                    let mut fx = Effects::new();
                    match msg {
                        ReplicaMsg::C(wire) => self.protos[to.0].on_wire(
                            &mut self.states[to.0],
                            &mut fx,
                            SimTime::from_micros(2),
                            from,
                            wire,
                        ),
                        ReplicaMsg::CRetrans(wire) => self.protos[to.0].on_retrans_wire(
                            &mut self.states[to.0],
                            &mut fx,
                            SimTime::from_micros(2),
                            from,
                            wire,
                        ),
                        _ => {}
                    }
                    self.absorb(to, fx);
                }
                let anything_undecided = self.states.iter().any(|st| st.has_undecided());
                if !anything_undecided {
                    break;
                }
                self.tick_all();
            }
        }
    }

    #[test]
    fn null_cadence_backs_off_and_resets_on_remote_progress() {
        use bcastdb_broadcast::msg::MsgId;

        let mut p = CausalProto::new_with_relay(SiteId(0), 3);
        p.enable_backoff();
        let mut st = SiteState::new(SiteId(0), 3, ConflictPolicy::WoundWait);
        st.wound_remote = false;
        st.rank_by_delivery = true;
        // An undecided local transaction keeps ticks wanted forever (its
        // peers never answer in this rig — a stalled cluster).
        let mut fx = Effects::new();
        let (_, events) = st.begin_txn(SimTime::ZERO, TxnSpec::new().write("x", 1));
        p.handle_events(&mut st, &mut fx, SimTime::ZERO, events);
        assert!(p.needs_ticks(&st));

        let mut fired = 0;
        for _ in 0..64 {
            let mut fx = Effects::new();
            p.on_tick(&mut st, &mut fx, SimTime::from_micros(50));
            if !fx.sends.is_empty() {
                fired += 1;
            }
        }
        assert!(
            (1..16).contains(&fired),
            "64 stalled ticks must coalesce into a handful of nulls \
             (own null self-deliveries are not progress), got {fired}"
        );

        // A remote delivery is progress: the next tick fires again.
        let mut vc = VectorClock::new(3);
        vc.set(SiteId(1), 1);
        let mut fx = Effects::new();
        p.on_wire(
            &mut st,
            &mut fx,
            SimTime::from_micros(60),
            SiteId(1),
            causal::Wire {
                id: MsgId {
                    origin: SiteId(1),
                    seq: 1,
                },
                vc,
                payload: std::sync::Arc::new(Payload::Null),
            },
        );
        let mut fx = Effects::new();
        p.on_tick(&mut st, &mut fx, SimTime::from_micros(70));
        assert!(!fx.sends.is_empty(), "post-progress tick emits again");
    }

    #[test]
    fn commit_through_implicit_acknowledgements_only() {
        let mut rig = Rig::new(3);
        let id = rig.submit(0, 1, TxnSpec::new().write("x", 9));
        rig.settle();
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(st.decided.get(&id), Some(&true), "site {i}");
            assert_eq!(st.store.value(&"x".into()), 9, "site {i}");
        }
        // No votes exist in this protocol: the remote entries never carry
        // any.
        for st in &rig.states {
            assert!(st.remote[&id].votes_yes.is_empty());
            assert!(st.remote[&id].my_vote.is_none());
        }
    }

    #[test]
    fn concurrent_conflicting_writers_lose_younger() {
        let mut rig = Rig::new(3);
        // Both broadcast before seeing each other: concurrent by
        // construction (no wires delivered in between).
        let older = rig.submit(0, 10, TxnSpec::new().write("x", 1));
        let younger = rig.submit(1, 20, TxnSpec::new().write("x", 2));
        rig.settle();
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(st.decided.get(&older), Some(&true), "older commits at {i}");
            assert_eq!(
                st.decided.get(&younger),
                Some(&false),
                "younger aborts at {i}"
            );
            assert_eq!(st.store.value(&"x".into()), 1, "older's write wins at {i}");
        }
    }

    #[test]
    fn causally_ordered_writers_both_commit_in_order() {
        let mut rig = Rig::new(3);
        let first = rig.submit(0, 10, TxnSpec::new().write("x", 1));
        rig.settle(); // first fully delivered before the second starts
        let second = rig.submit(1, 20, TxnSpec::new().write("x", 2));
        rig.settle();
        for st in &rig.states {
            assert_eq!(st.decided.get(&first), Some(&true));
            assert_eq!(st.decided.get(&second), Some(&true));
            assert_eq!(
                st.store.install_order(&"x".into()),
                &[first, second],
                "causal order = install order"
            );
        }
    }

    #[test]
    fn nack_aborts_at_every_site() {
        let mut rig = Rig::new(3);
        let id = rig.submit(0, 1, TxnSpec::new().write("x", 5));
        // Site 2 rejects it out-of-band before settling.
        {
            let mut fx = Effects::new();
            let mut work = std::collections::VecDeque::new();
            rig.protos[2].abort_with_nack(
                &mut rig.states[2],
                &mut fx,
                SimTime::from_micros(3),
                id,
                &mut work,
            );
            rig.absorb(SiteId(2), fx);
        }
        rig.settle();
        for (i, st) in rig.states.iter().enumerate() {
            assert_eq!(
                st.decided.get(&id),
                Some(&false),
                "site {i} aborted on NACK"
            );
        }
    }
}
