//! The four replication protocols.
//!
//! Each protocol module owns the state that is specific to its commitment
//! scheme and drives the shared per-site state
//! machinery. Protocols are *sans-IO*: they emit [`Effects`] (destination +
//! message pairs) that the [`ReplicaNode`](crate::engine::ReplicaNode)
//! flushes into the simulated network.

pub mod atomic;
pub mod causal;
pub mod p2p;
pub mod reliable;

use crate::payload::ReplicaMsg;
use bcastdb_broadcast::msg::Dest;
use bcastdb_sim::SiteId;

/// Outbound messages produced while handling one input.
#[derive(Debug, Default)]
pub struct Effects {
    /// `(destination, message)` pairs, in emission order.
    pub sends: Vec<(Dest, ReplicaMsg)>,
    /// Local transactions pausing for read-phase think time; the engine
    /// schedules their next step.
    pub pauses: Vec<bcastdb_db::TxnId>,
    /// Local transactions pausing between write-operation broadcasts; the
    /// engine schedules their next step.
    pub write_pauses: Vec<bcastdb_db::TxnId>,
}

/// Bounded exponential backoff over the engine's tick cadence, used by the
/// loss-recovery retransmit solicitations (reliable `RSync` watermarks and
/// causal gap-reporting nulls).
///
/// With a fixed tick interval every undecided transaction costs one
/// solicitation broadcast per tick cluster-wide, even when nothing was lost.
/// Backoff keeps the first solicitation immediate and then doubles the gap
/// between repeats — 1, 2, 4, … [`RetransmitBackoff::MAX_EXP`] ticks — while
/// any sign of progress (the protocol's delivery frontier moving) snaps the
/// cadence back to every tick. A deterministic per-site jitter derived from
/// `(site, attempt)` desynchronizes the herd without consuming simulator
/// randomness, preserving the replayability contract.
///
/// Disabled (the default) it fires on every tick, byte-identical to the
/// fixed-interval behavior that predates it.
#[derive(Debug)]
pub struct RetransmitBackoff {
    enabled: bool,
    site: usize,
    /// Consecutive solicitations without observed progress (capped).
    attempt: u32,
    /// Ticks still to skip before the next solicitation may fire.
    skip: u32,
}

impl RetransmitBackoff {
    /// Cap on the exponent: the base gap never exceeds `2^MAX_EXP` ticks
    /// (jitter can at most double it, keeping the cadence bounded).
    pub const MAX_EXP: u32 = 4;

    /// Creates a disabled (fire-every-tick) backoff for `site`.
    pub fn new(site: SiteId) -> Self {
        RetransmitBackoff {
            enabled: false,
            site: site.0,
            attempt: 0,
            skip: 0,
        }
    }

    /// Switches the exponential cadence on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Records protocol progress: the next solicitation fires on the very
    /// next tick again.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.skip = 0;
    }

    /// Called once per engine tick; returns whether the solicitation
    /// should fire on this tick.
    pub fn due(&mut self) -> bool {
        if !self.enabled {
            return true;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        let exp = self.attempt.min(Self::MAX_EXP);
        let gap = 1u32 << exp;
        // Deterministic jitter in `0..gap`: a hash of (site, attempt), so
        // sites that backed off together do not re-solicit in lockstep.
        let jitter = if gap > 1 {
            let h = (self.site as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(self.attempt.wrapping_mul(40503));
            h % gap
        } else {
            0
        };
        self.skip = gap - 1 + jitter;
        self.attempt = self.attempt.saturating_add(1);
        true
    }
}

impl Effects {
    /// Creates an empty effect set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message to every other site.
    pub fn send_others(&mut self, msg: ReplicaMsg) {
        self.sends.push((Dest::Others, msg));
    }

    /// Queues a unicast.
    pub fn send_to(&mut self, site: SiteId, msg: ReplicaMsg) {
        self.sends.push((Dest::Site(site), msg));
    }

    /// Queues a message according to an explicit destination selector.
    pub fn send(&mut self, dest: Dest, msg: ReplicaMsg) {
        self.sends.push((dest, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{P2pMsg, ReplicaMsg};
    use bcastdb_db::TxnId;

    #[test]
    fn backoff_disabled_fires_every_tick() {
        let mut b = RetransmitBackoff::new(SiteId(3));
        assert!((0..32).all(|_| b.due()));
    }

    #[test]
    fn backoff_gaps_grow_exponentially_and_stay_bounded() {
        let mut b = RetransmitBackoff::new(SiteId(0));
        b.enable();
        // Collect the tick indices that fire over a long stall.
        let fire_ticks: Vec<usize> = (0..200usize).filter(|_| b.due()).collect();
        assert_eq!(fire_ticks[0], 0, "first solicitation is immediate");
        let gaps: Vec<usize> = fire_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0] || w[0] >= 16),
            "gaps never shrink before the cap: {gaps:?}"
        );
        let max_gap = 2 * (1usize << RetransmitBackoff::MAX_EXP);
        assert!(
            gaps.iter().all(|&g| g <= max_gap),
            "gap bounded by 2*2^MAX_EXP (jitter included): {gaps:?}"
        );
        assert!(
            gaps.iter().any(|&g| g > 1),
            "the cadence actually backs off: {gaps:?}"
        );
    }

    #[test]
    fn backoff_reset_snaps_back_to_next_tick() {
        let mut b = RetransmitBackoff::new(SiteId(1));
        b.enable();
        assert!(b.due());
        // Walk into a long gap, then signal progress mid-gap.
        for _ in 0..3 {
            while !b.due() {}
        }
        assert!(!b.due(), "deep in a gap now");
        b.reset();
        assert!(b.due(), "progress makes the next tick fire again");
    }

    #[test]
    fn backoff_jitter_desynchronizes_sites() {
        // Two sites that stall in lockstep must not fire in lockstep
        // forever: at some attempt their jitter separates them.
        let fire = |site: usize| {
            let mut b = RetransmitBackoff::new(SiteId(site));
            b.enable();
            (0..400).filter(|_| b.due()).count()
        };
        let schedules: Vec<usize> = (0..4).map(fire).collect();
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "per-site jitter must differentiate schedules: {schedules:?}"
        );
    }

    #[test]
    fn effects_preserve_emission_order() {
        let mut fx = Effects::new();
        let t = TxnId::new(SiteId(0), 1);
        fx.send_others(ReplicaMsg::P2p(P2pMsg::Abort { txn: t }));
        fx.send_to(SiteId(2), ReplicaMsg::P2p(P2pMsg::Abort { txn: t }));
        assert_eq!(fx.sends.len(), 2);
        assert_eq!(fx.sends[0].0, Dest::Others);
        assert_eq!(fx.sends[1].0, Dest::Site(SiteId(2)));
    }
}
