//! The four replication protocols.
//!
//! Each protocol module owns the state that is specific to its commitment
//! scheme and drives the shared per-site state
//! machinery. Protocols are *sans-IO*: they emit [`Effects`] (destination +
//! message pairs) that the [`ReplicaNode`](crate::engine::ReplicaNode)
//! flushes into the simulated network.

pub mod atomic;
pub mod causal;
pub mod p2p;
pub mod reliable;

use crate::payload::ReplicaMsg;
use bcastdb_broadcast::msg::Dest;
use bcastdb_sim::SiteId;

/// Outbound messages produced while handling one input.
#[derive(Debug, Default)]
pub struct Effects {
    /// `(destination, message)` pairs, in emission order.
    pub sends: Vec<(Dest, ReplicaMsg)>,
    /// Local transactions pausing for read-phase think time; the engine
    /// schedules their next step.
    pub pauses: Vec<bcastdb_db::TxnId>,
    /// Local transactions pausing between write-operation broadcasts; the
    /// engine schedules their next step.
    pub write_pauses: Vec<bcastdb_db::TxnId>,
}

impl Effects {
    /// Creates an empty effect set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message to every other site.
    pub fn send_others(&mut self, msg: ReplicaMsg) {
        self.sends.push((Dest::Others, msg));
    }

    /// Queues a unicast.
    pub fn send_to(&mut self, site: SiteId, msg: ReplicaMsg) {
        self.sends.push((Dest::Site(site), msg));
    }

    /// Queues a message according to an explicit destination selector.
    pub fn send(&mut self, dest: Dest, msg: ReplicaMsg) {
        self.sends.push((dest, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{P2pMsg, ReplicaMsg};
    use bcastdb_db::TxnId;

    #[test]
    fn effects_preserve_emission_order() {
        let mut fx = Effects::new();
        let t = TxnId::new(SiteId(0), 1);
        fx.send_others(ReplicaMsg::P2p(P2pMsg::Abort { txn: t }));
        fx.send_to(SiteId(2), ReplicaMsg::P2p(P2pMsg::Abort { txn: t }));
        assert_eq!(fx.sends.len(), 2);
        assert_eq!(fx.sends[0].0, Dest::Others);
        assert_eq!(fx.sends[1].0, Dest::Site(SiteId(2)));
    }
}
