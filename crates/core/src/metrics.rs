//! Per-site protocol metrics.

use bcastdb_sim::telemetry::{Phase, PhaseCounts};
use bcastdb_sim::trace::{Counters, LatencyStats, TimeSeries};
use bcastdb_sim::{SimDuration, SimTime};
use std::fmt;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Wounded by an older conflicting transaction (wound-wait).
    Wounded,
    /// Lost a causally concurrent write-write conflict (causal protocol's
    /// early conflict detection).
    ConcurrentConflict,
    /// Failed deterministic certification (atomic protocol).
    Certification,
    /// A 2PC participant voted no.
    NegativeVote,
    /// Commit did not complete within the deadlock/timeout budget
    /// (point-to-point baseline).
    Timeout,
    /// Aborted by a view change (origin crashed or left the view).
    ViewChange,
    /// Wait-die policy: a younger requester died instead of waiting.
    WaitDie,
}

impl AbortReason {
    /// Stable counter name for this reason.
    pub fn counter(self) -> &'static str {
        match self {
            AbortReason::Wounded => "abort_wounded",
            AbortReason::ConcurrentConflict => "abort_concurrent",
            AbortReason::Certification => "abort_certification",
            AbortReason::NegativeVote => "abort_negative_vote",
            AbortReason::Timeout => "abort_timeout",
            AbortReason::ViewChange => "abort_view_change",
            AbortReason::WaitDie => "abort_wait_die",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.counter())
    }
}

/// Metrics collected at one site (aggregated by the cluster facade).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Named event counters.
    pub counters: Counters,
    /// Commit latency of update transactions originated here (submission →
    /// origin learns commit).
    pub update_latency: LatencyStats,
    /// Commit latency of read-only transactions originated here.
    pub readonly_latency: LatencyStats,
    /// Commits originated here bucketed by virtual-time window
    /// (throughput-over-time). `None` until enabled via
    /// [`Metrics::enable_commit_series`].
    pub commit_series: Option<TimeSeries>,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns on per-window commit counting with the given bucket width.
    /// Commits are bucketed by the virtual time the origin learned them.
    pub fn enable_commit_series(&mut self, window: SimDuration) {
        self.commit_series = Some(TimeSeries::new(window));
    }

    /// Records a committed update transaction with its latency, committed
    /// (at the origin) at virtual time `at`.
    pub fn commit_update(&mut self, latency: SimDuration, at: SimTime) {
        self.counters.incr("commits_update");
        self.update_latency.record(latency);
        if let Some(series) = &mut self.commit_series {
            series.record(at);
        }
    }

    /// Records a committed read-only transaction with its latency,
    /// committed at virtual time `at`.
    pub fn commit_readonly(&mut self, latency: SimDuration, at: SimTime) {
        self.counters.incr("commits_readonly");
        self.readonly_latency.record(latency);
        if let Some(series) = &mut self.commit_series {
            series.record(at);
        }
    }

    /// Records an abort with its reason.
    pub fn abort(&mut self, reason: AbortReason) {
        self.counters.incr("aborts");
        self.counters.incr(reason.counter());
    }

    /// Records one outgoing point-to-point message under both its
    /// fine-grained kind (`msg_*`) and its protocol [`Phase`]
    /// (`phase_*`). Incrementing both at the same call site is what
    /// guarantees the per-phase totals sum to the flat per-kind totals.
    pub fn record_send(&mut self, kind: &'static str, phase: Phase) {
        self.counters.incr(kind);
        self.counters.incr(phase.counter());
    }

    /// Records one wire-level batch transmission carrying `msgs` coalesced
    /// logical messages and `bytes` on the wire. Wire accounting is kept
    /// separate from [`Metrics::record_send`]'s logical accounting (whose
    /// `msg_*`/`phase_*` counters are identical with batching on or off);
    /// the `wire_*` counters say what the network actually carried.
    pub fn record_wire_batch(&mut self, msgs: u64, bytes: u64) {
        self.counters.incr("wire_batches");
        self.counters.add("wire_batched_msgs", msgs);
        self.counters.add("wire_batched_bytes", bytes);
    }

    /// Number of wire-level batch transmissions recorded.
    pub fn wire_batches(&self) -> u64 {
        self.counters.get("wire_batches")
    }

    /// Logical messages that travelled inside wire batches.
    pub fn wire_batched_msgs(&self) -> u64 {
        self.counters.get("wire_batched_msgs")
    }

    /// The per-phase message tally recorded via [`Metrics::record_send`].
    pub fn phase_counts(&self) -> PhaseCounts {
        let mut pc = PhaseCounts::default();
        for p in Phase::ALL {
            pc.add(p, self.counters.get(p.counter()));
        }
        pc
    }

    /// Total messages recorded under the fine-grained `msg_*` kinds —
    /// always equal to [`Metrics::phase_counts`]`.total()`.
    pub fn messages_by_kind(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with("msg_"))
            .map(|(_, v)| v)
            .sum()
    }

    /// Total commits (update + read-only).
    pub fn commits(&self) -> u64 {
        self.counters.get("commits_update") + self.counters.get("commits_readonly")
    }

    /// Total aborts.
    pub fn aborts(&self) -> u64 {
        self.counters.get("aborts")
    }

    /// Abort rate as a fraction of terminated transactions (0 when none).
    pub fn abort_rate(&self) -> f64 {
        let done = self.commits() + self.aborts();
        if done == 0 {
            0.0
        } else {
            self.aborts() as f64 / done as f64
        }
    }

    /// Merges another site's metrics into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.counters.merge(&other.counters);
        self.update_latency.merge(&other.update_latency);
        self.readonly_latency.merge(&other.readonly_latency);
        match (&mut self.commit_series, &other.commit_series) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.commit_series = Some(theirs.clone()),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_counting() {
        let mut m = Metrics::new();
        m.commit_update(SimDuration::from_millis(3), SimTime::from_micros(3000));
        m.commit_readonly(SimDuration::from_millis(1), SimTime::from_micros(1000));
        m.abort(AbortReason::Wounded);
        m.abort(AbortReason::Certification);
        assert_eq!(m.commits(), 2);
        assert_eq!(m.aborts(), 2);
        assert_eq!(m.counters.get("abort_wounded"), 1);
        assert!((m.abort_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_zero_when_idle() {
        let m = Metrics::new();
        assert_eq!(m.abort_rate(), 0.0);
    }

    #[test]
    fn commit_series_buckets_commits_when_enabled() {
        let mut m = Metrics::new();
        m.commit_update(SimDuration::from_millis(1), SimTime::from_micros(1000));
        assert!(m.commit_series.is_none(), "off by default");
        m.enable_commit_series(SimDuration::from_millis(10));
        m.commit_update(SimDuration::from_millis(1), SimTime::from_micros(5000));
        m.commit_readonly(SimDuration::from_millis(1), SimTime::from_micros(15000));
        let series = m.commit_series.as_ref().unwrap();
        assert_eq!(series.buckets(), &[1, 1]);

        // Cross-site merge: only enabled series combine; a disabled
        // receiver adopts the other side's series.
        let mut agg = Metrics::new();
        agg.merge(&m);
        assert_eq!(agg.commit_series.as_ref().unwrap().total(), 2);
        agg.merge(&m);
        assert_eq!(agg.commit_series.as_ref().unwrap().buckets(), &[2, 2]);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.commit_update(SimDuration::from_millis(2), SimTime::from_micros(2000));
        b.commit_update(SimDuration::from_millis(4), SimTime::from_micros(4000));
        b.abort(AbortReason::Timeout);
        a.merge(&b);
        assert_eq!(a.commits(), 2);
        assert_eq!(a.aborts(), 1);
        assert_eq!(a.update_latency.count(), 2);
        assert_eq!(a.update_latency.mean().as_micros(), 3_000);
    }

    #[test]
    fn phase_totals_match_kind_totals() {
        let mut m = Metrics::new();
        m.record_send("msg_write", Phase::Prepare);
        m.record_send("msg_write", Phase::Prepare);
        m.record_send("msg_vote", Phase::Vote);
        m.record_send("msg_null", Phase::Ack);
        let pc = m.phase_counts();
        assert_eq!(pc.prepare, 2);
        assert_eq!(pc.vote, 1);
        assert_eq!(pc.ack, 1);
        assert_eq!(pc.total(), 4);
        assert_eq!(m.messages_by_kind(), 4);
    }

    #[test]
    fn all_reasons_have_distinct_counters() {
        use AbortReason::*;
        let reasons = [
            Wounded,
            ConcurrentConflict,
            Certification,
            NegativeVote,
            Timeout,
            ViewChange,
            WaitDie,
        ];
        let names: std::collections::HashSet<&str> = reasons.iter().map(|r| r.counter()).collect();
        assert_eq!(names.len(), reasons.len());
    }
}
