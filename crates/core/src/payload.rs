//! Message and timer types exchanged by the replicas, and the protocol
//! selector.

use bcastdb_broadcast::atomic::{IsisWire, SeqWire};
use bcastdb_broadcast::batch::{WireSize, BATCH_HEADER_BYTES, PER_MSG_OVERHEAD_BYTES};
use bcastdb_broadcast::membership::MemberWire;
use bcastdb_broadcast::ring::RingWire;
use bcastdb_broadcast::{causal, reliable};
use bcastdb_db::{Key, TxnId, TxnSpec, WriteOp};
use bcastdb_sim::telemetry::Phase;
use bcastdb_sim::SiteId;
use std::sync::Arc;

/// Which of the paper's protocols a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// §2 baseline: point-to-point ROWA with per-operation acknowledgements
    /// and decentralized 2PC. Subject to distributed deadlock (resolved by
    /// timeout).
    PointToPoint,
    /// §3: write operations over reliable broadcast, decentralized 2PC with
    /// broadcast votes, wound-wait deadlock prevention.
    ReliableBcast,
    /// §4: causal broadcast with implicit positive acknowledgements and
    /// early detection of concurrent conflicts via vector clocks.
    CausalBcast,
    /// §5: causally broadcast writes, atomically broadcast commit requests,
    /// deterministic certification — no acknowledgements at all.
    AtomicBcast,
}

impl ProtocolKind {
    /// All protocols, in paper order (useful for experiment sweeps).
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::PointToPoint,
        ProtocolKind::ReliableBcast,
        ProtocolKind::CausalBcast,
        ProtocolKind::AtomicBcast,
    ];

    /// Short stable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::PointToPoint => "p2p-2pc",
            ProtocolKind::ReliableBcast => "reliable",
            ProtocolKind::CausalBcast => "causal",
            ProtocolKind::AtomicBcast => "atomic",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which atomic-broadcast implementation the atomic protocol uses
/// (ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AbcastImpl {
    /// Fixed sequencer (site 0): fewest messages, 2 hops.
    #[default]
    Sequencer,
    /// ISIS-style agreed priorities: `3(N-1)` messages, 3 hops.
    Isis,
    /// Pipelined ring dissemination: `2N-1` messages, every link carries
    /// ~1x the payload bytes regardless of N (bandwidth-bound at scale).
    Ring,
}

/// A transaction's global priority: older (smaller) wins conflicts.
///
/// The submission timestamp comes first, so priority order approximates
/// age order; origin and number break ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnPriority {
    /// Virtual submission time in microseconds.
    pub ts: u64,
    /// Originating site.
    pub origin: SiteId,
    /// Per-origin transaction number.
    pub num: u64,
}

impl TxnPriority {
    /// True iff `self` is older (= higher priority) than `other`.
    pub fn older_than(&self, other: &TxnPriority) -> bool {
        self < other
    }
}

/// Application payloads carried inside the broadcast primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// One write operation of an update transaction (§3/§4: operations are
    /// broadcast individually; FIFO/causal order puts them before the
    /// commit request).
    Write {
        /// The writing transaction.
        txn: TxnId,
        /// Its priority.
        prio: TxnPriority,
        /// The operation.
        op: WriteOp,
        /// Index of this op within the write set (0-based).
        index: usize,
        /// Total number of write ops of the transaction.
        of: usize,
    },
    /// Commit request concluding a transaction's write phase.
    CommitReq {
        /// The committing transaction.
        txn: TxnId,
        /// Its priority.
        prio: TxnPriority,
        /// Number of write operations that precede this request.
        n_writes: usize,
        /// Read-set versions observed at the origin (atomic protocol only):
        /// for each read key, the transaction that wrote the observed
        /// version. Used for deterministic certification.
        read_versions: Vec<(Key, Option<TxnId>)>,
        /// For each written key, the committed version (by writer) current
        /// at the origin when the commit request was broadcast (atomic
        /// protocol only).
        write_versions: Vec<(Key, Option<TxnId>)>,
    },
    /// A 2PC vote (reliable protocol): `site`'s verdict on `txn`,
    /// broadcast to all participants (decentralized 2PC).
    Vote {
        /// The voted-on transaction.
        txn: TxnId,
        /// The voting site.
        site: SiteId,
        /// `true` = ready to commit.
        yes: bool,
    },
    /// Explicit negative acknowledgement (causal protocol): `site` rejects
    /// `txn`. Positive acknowledgements are implicit in subsequent causal
    /// traffic.
    Nack {
        /// The rejected transaction.
        txn: TxnId,
        /// The rejecting site.
        site: SiteId,
    },
    /// Abort decision pushed by the origin (e.g. the transaction was
    /// wounded at its origin before commitment).
    AbortDecision {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// Empty message whose only purpose is to carry a vector clock — the
    /// paper's mitigation for slow implicit acknowledgements on quiet
    /// sites.
    Null,
}

impl Payload {
    /// The transaction this payload concerns, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            Payload::Write { txn, .. }
            | Payload::CommitReq { txn, .. }
            | Payload::Vote { txn, .. }
            | Payload::Nack { txn, .. }
            | Payload::AbortDecision { txn } => Some(*txn),
            Payload::Null => None,
        }
    }
}

/// Wire-size estimate of one `(key, version)` certification entry.
fn version_entry_size(entry: &(Key, Option<TxnId>)) -> usize {
    entry.0.as_str().len() + 1 + if entry.1.is_some() { 16 } else { 0 }
}

/// Wire-size estimate of one write operation (key text + 8-byte value).
fn write_op_size(op: &WriteOp) -> usize {
    op.key.as_str().len() + 8
}

impl WireSize for Payload {
    fn wire_size(&self) -> usize {
        // TxnId ≈ 16 bytes, TxnPriority ≈ 24 bytes. Like all WireSize
        // estimates these only need to be deterministic and plausible —
        // the simulator charges transmission time per byte.
        match self {
            Payload::Write { op, .. } => 16 + 24 + write_op_size(op) + 8 + 8,
            Payload::CommitReq {
                read_versions,
                write_versions,
                ..
            } => {
                16 + 24
                    + 8
                    + read_versions.iter().map(version_entry_size).sum::<usize>()
                    + write_versions.iter().map(version_entry_size).sum::<usize>()
            }
            Payload::Vote { .. } => 16 + 8 + 1,
            Payload::Nack { .. } => 16 + 8,
            Payload::AbortDecision { .. } => 16,
            Payload::Null => 1,
        }
    }
}

/// Point-to-point messages of the §2 baseline (no broadcast layer).
#[derive(Debug, Clone, PartialEq)]
pub enum P2pMsg {
    /// Origin → site: one write operation.
    Write {
        /// The writing transaction.
        txn: TxnId,
        /// The operation.
        op: WriteOp,
        /// Index of the op within the write set.
        index: usize,
    },
    /// Site → origin: write `index` of `txn` has its lock.
    WriteAck {
        /// The acknowledged transaction.
        txn: TxnId,
        /// Which write op is acknowledged.
        index: usize,
    },
    /// Origin → site: request to commit.
    CommitReq {
        /// The committing transaction.
        txn: TxnId,
        /// Full write set (sites apply it on commit).
        writes: Vec<WriteOp>,
    },
    /// Site → everyone: decentralized 2PC vote.
    Vote {
        /// The voted-on transaction.
        txn: TxnId,
        /// The voting site.
        site: SiteId,
        /// `true` = ready to commit.
        yes: bool,
    },
    /// Origin → site: abort (deadlock timeout or wound).
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
}

impl WireSize for P2pMsg {
    fn wire_size(&self) -> usize {
        match self {
            P2pMsg::Write { op, .. } => 16 + write_op_size(op) + 8,
            P2pMsg::WriteAck { .. } => 16 + 8,
            P2pMsg::CommitReq { writes, .. } => {
                16 + writes.iter().map(write_op_size).sum::<usize>()
            }
            P2pMsg::Vote { .. } => 16 + 8 + 1,
            P2pMsg::Abort { .. } => 16,
        }
    }
}

/// The top-level message type of a replica node: the union of every
/// primitive's wire format plus the baseline's point-to-point messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaMsg {
    /// Reliable-broadcast wire traffic. The payload body is `Arc`-shared:
    /// an N-site broadcast allocates the payload once and every
    /// per-destination copy of the wire is a refcount bump.
    R(reliable::Wire<Arc<Payload>>),
    /// Causal-broadcast wire traffic (`Arc`-shared payload body).
    C(causal::Wire<Arc<Payload>>),
    /// Sequencer atomic-broadcast wire traffic (`Arc`-shared payload body).
    ASeq(SeqWire<Arc<Payload>>),
    /// ISIS atomic-broadcast wire traffic (`Arc`-shared payload body).
    AIsis(IsisWire<Arc<Payload>>),
    /// Ring atomic-broadcast wire traffic (`Arc`-shared payload body).
    ARing(RingWire<Arc<Payload>>),
    /// Point-to-point baseline traffic.
    P2p(P2pMsg),
    /// Membership service traffic.
    Member(MemberWire),
    /// Loss-recovery sync: the sender's per-origin reliable-broadcast
    /// delivery watermarks; the receiver retransmits what the sender lacks.
    RSync(Vec<u64>),
    /// A retransmitted causal wire. Processed exactly like [`ReplicaMsg::C`]
    /// except it never triggers gap-report handling — retransmitted nulls
    /// carry stale clocks that must not solicit further retransmissions.
    CRetrans(causal::Wire<Arc<Payload>>),
    /// A batch of coalesced messages produced by the batching layer
    /// (`batch_window` enabled). The envelope is pure transport: the
    /// receiver unwraps and processes each inner message in order, and
    /// only the inner messages enter per-phase accounting — logical
    /// counts are identical with batching on or off.
    Batch(Vec<ReplicaMsg>),
}

impl ReplicaMsg {
    /// A stable label for traffic-decomposition counters (which kind of
    /// message this is, counted per point-to-point send).
    pub fn kind(&self) -> &'static str {
        match self {
            ReplicaMsg::R(w) => Self::payload_kind(&w.payload),
            ReplicaMsg::C(w) => Self::payload_kind(&w.payload),
            ReplicaMsg::ASeq(_) => "msg_abcast",
            ReplicaMsg::AIsis(_) => "msg_abcast",
            ReplicaMsg::ARing(_) => "msg_abcast",
            ReplicaMsg::P2p(m) => match m {
                P2pMsg::Write { .. } => "msg_write",
                P2pMsg::WriteAck { .. } => "msg_write_ack",
                P2pMsg::CommitReq { .. } => "msg_commit_req",
                P2pMsg::Vote { .. } => "msg_vote",
                P2pMsg::Abort { .. } => "msg_abort",
            },
            ReplicaMsg::Member(_) => "msg_membership",
            ReplicaMsg::RSync(_) => "msg_sync",
            ReplicaMsg::CRetrans(_) => "msg_retrans",
            ReplicaMsg::Batch(_) => "msg_batch",
        }
    }

    fn payload_kind(p: &Payload) -> &'static str {
        match p {
            Payload::Write { .. } => "msg_write",
            Payload::CommitReq { .. } => "msg_commit_req",
            Payload::Vote { .. } => "msg_vote",
            Payload::Nack { .. } => "msg_nack",
            Payload::AbortDecision { .. } => "msg_abort",
            Payload::Null => "msg_null",
        }
    }

    /// The protocol [`Phase`] this message belongs to — the typed bucket
    /// used for per-phase traffic accounting. The mapping follows the
    /// paper's cost decomposition:
    ///
    /// - **prepare** — disseminating a transaction's effects: write
    ///   operations, commit requests, and the payload-carrying legs of the
    ///   atomic broadcast (sequencer submissions, ISIS data, ring data
    ///   hops),
    /// - **vote** — explicit 2PC votes,
    /// - **ack** — acknowledgement-shaped control traffic: per-operation
    ///   write acks (baseline), negative acknowledgements and null
    ///   keep-alives (causal), ISIS priority proposals, ring cumulative
    ///   window acks,
    /// - **decision** — outcome propagation: abort decisions, the
    ///   sequencer's orderings, ISIS final priorities, ring commits,
    /// - **retransmit** — loss recovery: retransmitted causal wires,
    ///   reliable-broadcast watermark syncs, ring view-change repair,
    /// - **membership** — heartbeats and view agreement.
    pub fn phase(&self) -> Phase {
        match self {
            ReplicaMsg::R(w) => Self::payload_phase(&w.payload),
            ReplicaMsg::C(w) => Self::payload_phase(&w.payload),
            ReplicaMsg::ASeq(w) => match w {
                SeqWire::Submit { .. } => Phase::Prepare,
                SeqWire::Ordered { .. } => Phase::Decision,
            },
            ReplicaMsg::AIsis(w) => match w {
                IsisWire::Data { .. } => Phase::Prepare,
                IsisWire::Propose { .. } => Phase::Ack,
                IsisWire::Final { .. } => Phase::Decision,
            },
            ReplicaMsg::ARing(w) => match w {
                RingWire::Data { .. } => Phase::Prepare,
                RingWire::Commit { .. } => Phase::Decision,
                RingWire::Ack { .. } => Phase::Ack,
                RingWire::Repair { .. } => Phase::Retransmit,
            },
            ReplicaMsg::P2p(m) => match m {
                P2pMsg::Write { .. } | P2pMsg::CommitReq { .. } => Phase::Prepare,
                P2pMsg::WriteAck { .. } => Phase::Ack,
                P2pMsg::Vote { .. } => Phase::Vote,
                P2pMsg::Abort { .. } => Phase::Decision,
            },
            ReplicaMsg::Member(_) => Phase::Membership,
            ReplicaMsg::RSync(_) | ReplicaMsg::CRetrans(_) => Phase::Retransmit,
            // The batch envelope never enters per-phase accounting (the
            // engine counts and traces its inner messages individually);
            // report the first inner message's phase for completeness.
            ReplicaMsg::Batch(msgs) => msgs.first().map_or(Phase::Ack, |m| m.phase()),
        }
    }

    fn payload_phase(p: &Payload) -> Phase {
        match p {
            Payload::Write { .. } | Payload::CommitReq { .. } => Phase::Prepare,
            Payload::Vote { .. } => Phase::Vote,
            Payload::Nack { .. } | Payload::Null => Phase::Ack,
            Payload::AbortDecision { .. } => Phase::Decision,
        }
    }

    /// Estimated wire size in bytes — what a batched transmission charges
    /// the simulated link for this message (the unbatched send path keeps
    /// the simulator's fixed default size, byte-for-byte identical to the
    /// pre-batching behavior).
    pub fn size_hint(&self) -> usize {
        self.wire_size()
    }
}

impl WireSize for ReplicaMsg {
    fn wire_size(&self) -> usize {
        // 1 tag byte + the variant's wire format.
        1 + match self {
            ReplicaMsg::R(w) => w.wire_size(),
            ReplicaMsg::C(w) | ReplicaMsg::CRetrans(w) => w.wire_size(),
            ReplicaMsg::ASeq(w) => w.wire_size(),
            ReplicaMsg::AIsis(w) => w.wire_size(),
            ReplicaMsg::ARing(w) => w.wire_size(),
            ReplicaMsg::P2p(m) => m.wire_size(),
            ReplicaMsg::Member(w) => w.wire_size(),
            ReplicaMsg::RSync(watermarks) => 8 * watermarks.len(),
            ReplicaMsg::Batch(msgs) => {
                BATCH_HEADER_BYTES
                    + msgs
                        .iter()
                        .map(|m| PER_MSG_OVERHEAD_BYTES + m.wire_size())
                        .sum::<usize>()
            }
        }
    }
}

/// Timer tags of a replica node.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaTimer {
    /// A client submits a transaction at this site.
    Submit(TxnSpec),
    /// Periodic tick: membership heartbeats, causal-protocol null
    /// messages, deadlock/timeout checks.
    Tick,
    /// Think time elapsed: the local transaction issues its next read.
    ReadStep(TxnId),
    /// Think time elapsed: the local transaction broadcasts its next write
    /// operation (or, after the last one, its commit request).
    WriteStep(TxnId),
    /// Batching flush window expired: send every pending batch.
    FlushBatch,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_age_then_site() {
        let a = TxnPriority {
            ts: 5,
            origin: SiteId(1),
            num: 1,
        };
        let b = TxnPriority {
            ts: 9,
            origin: SiteId(0),
            num: 1,
        };
        let c = TxnPriority {
            ts: 5,
            origin: SiteId(2),
            num: 1,
        };
        assert!(a.older_than(&b), "earlier timestamp wins");
        assert!(a.older_than(&c), "site breaks timestamp ties");
        assert!(!b.older_than(&a));
    }

    #[test]
    fn payload_txn_extraction() {
        let t = TxnId::new(SiteId(0), 1);
        assert_eq!(Payload::AbortDecision { txn: t }.txn(), Some(t));
        assert_eq!(Payload::Null.txn(), None);
    }

    #[test]
    fn protocol_names_are_stable() {
        let names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["p2p-2pc", "reliable", "causal", "atomic"]);
        assert_eq!(ProtocolKind::CausalBcast.to_string(), "causal");
    }

    #[test]
    fn abcast_impl_defaults_to_sequencer() {
        assert_eq!(AbcastImpl::default(), AbcastImpl::Sequencer);
    }

    #[test]
    fn every_message_maps_to_its_documented_phase() {
        use bcastdb_broadcast::msg::MsgId;
        let t = TxnId::new(SiteId(0), 1);
        let id = MsgId {
            origin: SiteId(0),
            seq: 1,
        };
        let wire = |p: Payload| reliable::Wire {
            id,
            payload: Arc::new(p),
        };
        let cases: Vec<(ReplicaMsg, Phase)> = vec![
            (
                ReplicaMsg::R(wire(Payload::Write {
                    txn: t,
                    prio: TxnPriority {
                        ts: 0,
                        origin: SiteId(0),
                        num: 1,
                    },
                    op: WriteOp {
                        key: Key::new("x"),
                        value: 1,
                    },
                    index: 0,
                    of: 1,
                })),
                Phase::Prepare,
            ),
            (
                ReplicaMsg::R(wire(Payload::Vote {
                    txn: t,
                    site: SiteId(1),
                    yes: true,
                })),
                Phase::Vote,
            ),
            (
                ReplicaMsg::R(wire(Payload::Nack {
                    txn: t,
                    site: SiteId(1),
                })),
                Phase::Ack,
            ),
            (ReplicaMsg::R(wire(Payload::Null)), Phase::Ack),
            (
                ReplicaMsg::R(wire(Payload::AbortDecision { txn: t })),
                Phase::Decision,
            ),
            (
                ReplicaMsg::ASeq(SeqWire::Submit {
                    id,
                    payload: Arc::new(Payload::Null),
                }),
                Phase::Prepare,
            ),
            (
                ReplicaMsg::ASeq(SeqWire::Ordered {
                    gseq: 1,
                    id,
                    payload: Arc::new(Payload::Null),
                }),
                Phase::Decision,
            ),
            (
                ReplicaMsg::ARing(RingWire::Data {
                    id,
                    payload: Arc::new(Payload::Null),
                    stable: 0,
                }),
                Phase::Prepare,
            ),
            (
                ReplicaMsg::ARing(RingWire::Commit {
                    epoch: 0,
                    gseq: 1,
                    id,
                }),
                Phase::Decision,
            ),
            (ReplicaMsg::ARing(RingWire::Ack { upto: 1 }), Phase::Ack),
            (
                ReplicaMsg::ARing(RingWire::Repair {
                    site: SiteId(1),
                    epoch: 1,
                    entries: vec![(0, id)],
                    delivered: 0,
                }),
                Phase::Retransmit,
            ),
            (
                ReplicaMsg::P2p(P2pMsg::WriteAck { txn: t, index: 0 }),
                Phase::Ack,
            ),
            (ReplicaMsg::P2p(P2pMsg::Abort { txn: t }), Phase::Decision),
            (ReplicaMsg::RSync(vec![0, 0]), Phase::Retransmit),
        ];
        for (msg, want) in cases {
            assert_eq!(msg.phase(), want, "{:?}", msg.kind());
        }
    }

    /// Satellite of the bandwidth model: `size_hint` (what the batching
    /// layer charges the link) must agree with `WireSize` for every
    /// `ReplicaMsg` variant, and both must match an independently computed
    /// byte layout. The match below is wildcard-free, so adding a message
    /// variant without sizing it here fails to compile — silent
    /// bandwidth-model drift becomes a compile error.
    #[test]
    fn wire_size_matches_encoded_layout_for_every_replica_msg() {
        use bcastdb_broadcast::msg::MsgId;
        use bcastdb_broadcast::VectorClock;
        let t = TxnId::new(SiteId(0), 1);
        let id = MsgId {
            origin: SiteId(0),
            seq: 1,
        };
        let null = || Arc::new(Payload::Null);
        let vc = VectorClock::new(3);
        let view = bcastdb_broadcast::View::initial(3);
        let exemplars: Vec<ReplicaMsg> = vec![
            ReplicaMsg::R(reliable::Wire {
                id,
                payload: null(),
            }),
            ReplicaMsg::C(causal::Wire {
                id,
                vc: vc.clone(),
                payload: null(),
            }),
            ReplicaMsg::CRetrans(causal::Wire {
                id,
                vc: vc.clone(),
                payload: null(),
            }),
            ReplicaMsg::ASeq(SeqWire::Submit {
                id,
                payload: null(),
            }),
            ReplicaMsg::ASeq(SeqWire::Ordered {
                gseq: 1,
                id,
                payload: null(),
            }),
            ReplicaMsg::AIsis(IsisWire::Data {
                id,
                payload: null(),
            }),
            ReplicaMsg::AIsis(IsisWire::Propose {
                id,
                prio: (1, SiteId(1)),
            }),
            ReplicaMsg::AIsis(IsisWire::Final {
                id,
                prio: (1, SiteId(1)),
            }),
            ReplicaMsg::ARing(RingWire::Data {
                id,
                payload: null(),
                stable: 0,
            }),
            ReplicaMsg::ARing(RingWire::Commit {
                epoch: 0,
                gseq: 1,
                id,
            }),
            ReplicaMsg::ARing(RingWire::Ack { upto: 1 }),
            ReplicaMsg::ARing(RingWire::Repair {
                site: SiteId(1),
                epoch: 1,
                entries: vec![(0, id), (1, id)],
                delivered: 0,
            }),
            ReplicaMsg::P2p(P2pMsg::Write {
                txn: t,
                op: WriteOp {
                    key: Key::new("x"),
                    value: 1,
                },
                index: 0,
            }),
            ReplicaMsg::P2p(P2pMsg::WriteAck { txn: t, index: 0 }),
            ReplicaMsg::P2p(P2pMsg::CommitReq {
                txn: t,
                writes: vec![WriteOp {
                    key: Key::new("x"),
                    value: 1,
                }],
            }),
            ReplicaMsg::P2p(P2pMsg::Vote {
                txn: t,
                site: SiteId(1),
                yes: true,
            }),
            ReplicaMsg::P2p(P2pMsg::Abort { txn: t }),
            ReplicaMsg::Member(MemberWire::Heartbeat),
            ReplicaMsg::Member(MemberWire::Propose(view.clone())),
            ReplicaMsg::RSync(vec![0, 0, 0]),
            ReplicaMsg::Batch(vec![
                ReplicaMsg::ARing(RingWire::Ack { upto: 1 }),
                ReplicaMsg::Member(MemberWire::Heartbeat),
            ]),
        ];
        // The documented layouts, written out independently of the
        // `WireSize` impls: MsgId = 16, one u64 per counter/watermark,
        // `Payload::Null` = 1, a WriteOp = key bytes + 8-byte value.
        let body = |m: &ReplicaMsg| -> usize {
            match m {
                ReplicaMsg::R(w) => 16 + w.payload.wire_size(),
                ReplicaMsg::C(w) | ReplicaMsg::CRetrans(w) => {
                    16 + 8 * w.vc.len() + w.payload.wire_size()
                }
                ReplicaMsg::ASeq(SeqWire::Submit { payload, .. }) => 16 + payload.wire_size(),
                ReplicaMsg::ASeq(SeqWire::Ordered { payload, .. }) => 8 + 16 + payload.wire_size(),
                ReplicaMsg::AIsis(IsisWire::Data { payload, .. }) => 16 + payload.wire_size(),
                ReplicaMsg::AIsis(IsisWire::Propose { .. })
                | ReplicaMsg::AIsis(IsisWire::Final { .. }) => 16 + 16,
                ReplicaMsg::ARing(RingWire::Data { payload, .. }) => 16 + payload.wire_size() + 8,
                ReplicaMsg::ARing(RingWire::Commit { .. }) => 8 + 8 + 16,
                ReplicaMsg::ARing(RingWire::Ack { .. }) => 8,
                ReplicaMsg::ARing(RingWire::Repair { entries, .. }) => {
                    8 + 8 + 8 + 24 * entries.len()
                }
                ReplicaMsg::P2p(P2pMsg::Write { op, .. }) => 16 + (op.key.as_str().len() + 8) + 8,
                ReplicaMsg::P2p(P2pMsg::WriteAck { .. }) => 16 + 8,
                ReplicaMsg::P2p(P2pMsg::CommitReq { writes, .. }) => {
                    16 + writes
                        .iter()
                        .map(|op| op.key.as_str().len() + 8)
                        .sum::<usize>()
                }
                ReplicaMsg::P2p(P2pMsg::Vote { .. }) => 16 + 8 + 1,
                ReplicaMsg::P2p(P2pMsg::Abort { .. }) => 16,
                ReplicaMsg::Member(MemberWire::Heartbeat) => 1,
                ReplicaMsg::Member(MemberWire::Propose(v)) => 1 + 8 + 8 * v.members.len(),
                ReplicaMsg::RSync(w) => 8 * w.len(),
                ReplicaMsg::Batch(msgs) => {
                    let inner: usize = msgs
                        .iter()
                        .map(|m| PER_MSG_OVERHEAD_BYTES + m.wire_size())
                        .sum();
                    BATCH_HEADER_BYTES + inner
                }
            }
        };
        for msg in &exemplars {
            let expected = 1 + body(msg); // 1 tag byte + the variant body
            assert_eq!(
                msg.wire_size(),
                expected,
                "WireSize drifted from the documented layout: {:?}",
                msg.kind()
            );
            assert_eq!(
                msg.size_hint(),
                msg.wire_size(),
                "size_hint must charge exactly the wire size: {:?}",
                msg.kind()
            );
        }
    }
}
