//! # bcastdb-core
//!
//! The replication protocols of *"Using Broadcast Primitives in Replicated
//! Databases"* (Stanoi, Agrawal, El Abbadi — ICDCS 1998), implemented over
//! the broadcast primitives of `bcastdb-broadcast` and the per-site
//! database substrate of `bcastdb-db`, driven by the deterministic
//! simulator of `bcastdb-sim`.
//!
//! Four protocols, one per [`ProtocolKind`]:
//!
//! | Protocol | Dissemination | Commitment | Paper |
//! |----------|---------------|------------|-------|
//! | [`ProtocolKind::PointToPoint`] | unicast + per-op acks | decentralized 2PC | §2 (baseline) |
//! | [`ProtocolKind::ReliableBcast`] | reliable broadcast | decentralized 2PC, deadlock-free | §3 |
//! | [`ProtocolKind::CausalBcast`] | causal broadcast | **implicit** acknowledgements | §4 |
//! | [`ProtocolKind::AtomicBcast`] | causal writes + atomic commit | none (deterministic certification) | §5 |
//!
//! The public entry point is [`Cluster`]: build one with
//! [`Cluster::builder`], submit [`TxnSpec`]s, run the simulation, then
//! inspect outcomes, per-replica state, metrics, and — via
//! [`Cluster::check_serializability`] — the one-copy serialization graph of
//! the whole execution.
//!
//! ```
//! use bcastdb_core::{Cluster, ProtocolKind, TxnSpec};
//! use bcastdb_sim::SiteId;
//!
//! let mut cluster = Cluster::builder()
//!     .sites(5)
//!     .protocol(ProtocolKind::CausalBcast)
//!     .seed(7)
//!     .build();
//! let id = cluster.submit(SiteId(2), TxnSpec::new().read("a").write("b", 1));
//! cluster.run_to_quiescence();
//! assert!(cluster.is_committed(id));
//! cluster.check_serializability().expect("one-copy serializable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;
mod metrics;
mod payload;
mod placement;
pub mod protocols;
mod state;

pub use cluster::{Cluster, ClusterBuilder, ClusterConfig, TxnOutcome};
pub use engine::ReplicaNode;
pub use metrics::{AbortReason, Metrics};
pub use payload::{AbcastImpl, Payload, ProtocolKind, ReplicaMsg, ReplicaTimer, TxnPriority};
pub use placement::Placement;
pub use state::ConflictPolicy;

pub use bcastdb_db::{TxnId, TxnSpec};
