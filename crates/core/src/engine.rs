//! The replica node: one per site, implementing the simulator's [`Node`]
//! trait and dispatching between the configured protocol, the membership
//! service, and the shared site state.

use crate::metrics::AbortReason;
use crate::payload::{AbcastImpl, ProtocolKind, ReplicaMsg, ReplicaTimer};
use crate::protocols::{
    atomic::AtomicProto, causal::CausalProto, p2p::P2pProto, reliable::ReliableProto, Effects,
};
use crate::state::{ConflictPolicy, EventBuf, SiteState};
use bcastdb_broadcast::batch::{Batch, Batcher};
use bcastdb_broadcast::membership::{MemberEvent, ViewManager};
use bcastdb_broadcast::msg::dest_iter;
use bcastdb_sim::inline::InlineVec;
use bcastdb_sim::telemetry::{Phase, TraceEvent};
use bcastdb_sim::{Ctx, Node, Sample, SendOutcome, SimDuration, SimTime, SiteId};
use std::collections::BTreeSet;

/// Per-node configuration (derived from the cluster config).
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which protocol this cluster runs.
    pub protocol: ProtocolKind,
    /// Atomic-broadcast implementation (atomic protocol only).
    pub abcast: AbcastImpl,
    /// Conflict policy between update transactions.
    pub policy: ConflictPolicy,
    /// Tick period (timeout checks, causal null messages, membership
    /// heartbeats).
    pub tick_every: SimDuration,
    /// Deadlock timeout of the point-to-point baseline.
    pub p2p_timeout: SimDuration,
    /// Whether the causal protocol emits null messages on ticks.
    pub null_messages: bool,
    /// Whether the membership service runs (needed only for failure
    /// experiments; it keeps the simulation from quiescing).
    pub membership: bool,
    /// Failure-detector suspicion timeout (when membership is on).
    pub suspect_after: SimDuration,
    /// Speculative fast commit (reliable and causal protocols, membership
    /// on): decide from the surviving quorum's votes/acks once every
    /// missing voter is suspected, instead of waiting out the view change.
    pub fast_commit: bool,
    /// Eager broadcast relaying (loss tolerance for the reliable and
    /// causal protocols at `O(N²)` message cost).
    pub relay: bool,
    /// Bounded exponential backoff (with deterministic jitter) on the
    /// loss-recovery solicitation cadence — reliable `RSync` watermarks
    /// and causal gap-reporting nulls. Off by default: the fixed
    /// once-per-tick cadence stays byte-identical to prior behavior.
    pub retransmit_backoff: bool,
    /// Per-operation think time (read acquisition and write broadcasts).
    pub think_time: SimDuration,
    /// Replica placement.
    pub placement: crate::placement::Placement,
    /// Batching flush window: `None` (default) sends every message
    /// individually — byte-identical to the pre-batching behavior.
    /// `Some(w)` coalesces outgoing messages per destination and flushes
    /// them as one wire transmission after at most `w` (earlier if
    /// `batch_max_bytes` would overflow). Acks, votes, and other control
    /// traffic piggyback on whatever batch is already leaving.
    pub batch_window: Option<SimDuration>,
    /// Size cap of one batch on the wire, in bytes (envelope included).
    pub batch_max_bytes: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            protocol: ProtocolKind::ReliableBcast,
            abcast: AbcastImpl::default(),
            policy: ConflictPolicy::default(),
            tick_every: SimDuration::from_millis(5),
            p2p_timeout: SimDuration::from_millis(500),
            null_messages: true,
            membership: false,
            suspect_after: SimDuration::from_millis(100),
            fast_commit: false,
            relay: false,
            retransmit_backoff: false,
            think_time: SimDuration::ZERO,
            placement: crate::placement::Placement::Full,
            batch_window: None,
            batch_max_bytes: 1_400,
        }
    }
}

/// State-transfer snapshot produced by [`ReplicaNode::export_snapshot`].
#[derive(Debug, Clone)]
pub struct ResyncSnapshot {
    store: bcastdb_db::Store,
    decided: std::collections::BTreeMap<bcastdb_db::TxnId, bool>,
    log: bcastdb_db::RedoLog,
    view: BTreeSet<SiteId>,
    member_view: Option<bcastdb_broadcast::membership::View>,
    reliable: Option<Vec<u64>>,
    causal_clock: Option<bcastdb_broadcast::VectorClock>,
    atomic: Option<crate::protocols::atomic::AbSnapshot>,
}

#[derive(Debug)]
enum Proto {
    P2p(P2pProto),
    Reliable(ReliableProto),
    Causal(CausalProto),
    Atomic(AtomicProto),
}

/// One replica of the replicated database.
#[derive(Debug)]
pub struct ReplicaNode {
    st: SiteState,
    proto: Proto,
    member: Option<ViewManager>,
    cfg: NodeConfig,
    tick_armed: bool,
    /// Outgoing-message coalescing, present iff `cfg.batch_window` is set.
    batcher: Option<Batcher<ReplicaMsg>>,
    /// True while a `FlushBatch` timer is pending.
    flush_armed: bool,
    /// Reusable [`Effects`] buffers: taken at the start of each step and
    /// stored back (drained, capacity kept) by [`ReplicaNode::flush`], so
    /// steady-state steps allocate no effect vectors at all.
    scratch: Effects,
    /// The suspicion set reported to the protocol on the previous
    /// membership tick; `Suspect` trace events fire on its growth.
    last_suspected: BTreeSet<SiteId>,
}

impl ReplicaNode {
    /// Creates the replica for site `me` of `n` under `cfg`.
    pub fn new(me: SiteId, n: usize, cfg: NodeConfig) -> Self {
        let mut st = SiteState::new(me, n, cfg.policy);
        let proto = match cfg.protocol {
            ProtocolKind::PointToPoint => {
                st.wound_remote = false;
                st.wound_local_readers = false;
                Proto::P2p(P2pProto::new(cfg.p2p_timeout))
            }
            ProtocolKind::ReliableBcast => {
                st.resolve_read_deadlocks = true;
                let mut p = if cfg.relay {
                    ReliableProto::new_with_relay(me, n)
                } else {
                    ReliableProto::new(me, n)
                };
                p.fast_commit = cfg.fast_commit;
                if cfg.retransmit_backoff {
                    p.enable_backoff();
                }
                Proto::Reliable(p)
            }
            ProtocolKind::CausalBcast => {
                st.wound_remote = false;
                st.rank_by_delivery = true;
                let mut p = if cfg.relay {
                    CausalProto::new_with_relay(me, n)
                } else {
                    CausalProto::new(me, n)
                };
                p.null_messages = cfg.null_messages;
                p.fast_commit = cfg.fast_commit;
                if cfg.retransmit_backoff {
                    p.enable_backoff();
                }
                Proto::Causal(p)
            }
            ProtocolKind::AtomicBcast => {
                st.wound_remote = false;
                Proto::Atomic(AtomicProto::new(me, n, cfg.abcast))
            }
        };
        st.think = cfg.think_time;
        st.placement = cfg.placement;
        let member = cfg
            .membership
            .then(|| ViewManager::new(me, n, cfg.tick_every, cfg.suspect_after));
        let batcher = cfg.batch_window.map(|_| Batcher::new(cfg.batch_max_bytes));
        ReplicaNode {
            st,
            proto,
            member,
            cfg,
            tick_armed: false,
            batcher,
            flush_armed: false,
            scratch: Effects::new(),
            last_suspected: BTreeSet::new(),
        }
    }

    /// Read access to the shared site state (stores, metrics, decisions).
    pub fn state(&self) -> &SiteState {
        &self.st
    }

    /// Mutable access to the site state (test setup, e.g. seeding stores).
    pub fn state_mut(&mut self) -> &mut SiteState {
        &mut self.st
    }

    /// The installed view's members (full set when membership is off).
    pub fn view_members(&self) -> BTreeSet<SiteId> {
        match &self.member {
            Some(m) => m.view().members.clone(),
            None => (0..self.st.n).map(SiteId).collect(),
        }
    }

    /// True while this site may process transactions (in a majority view).
    pub fn is_operational(&self) -> bool {
        self.member.as_ref().is_none_or(|m| m.is_operational())
    }

    /// Captures everything a recovering replica needs from this one (state
    /// transfer at a quiet moment): the committed store, decisions, redo
    /// log, view, and the broadcast engines' delivery positions.
    pub fn export_snapshot(&self) -> ResyncSnapshot {
        ResyncSnapshot {
            store: self.st.store.clone(),
            decided: self.st.decided.clone(),
            log: self.st.log.clone(),
            view: self.view_members(),
            member_view: self.member.as_ref().map(|m| m.view().clone()),
            reliable: match &self.proto {
                Proto::Reliable(p) => Some(p.watermarks()),
                _ => None,
            },
            causal_clock: match &self.proto {
                Proto::Causal(p) => Some(p.clock()),
                _ => None,
            },
            atomic: match &self.proto {
                Proto::Atomic(p) => Some(p.snapshot()),
                _ => None,
            },
        }
    }

    /// Re-initialises this (previously crashed) replica from a donor
    /// snapshot. Assumes a quiet moment — in-flight transaction state is
    /// dropped; the transferred store, log, and decisions carry all
    /// outcomes. Missed broadcasts are *not* redelivered: the engines
    /// resume past them at the donor's delivery positions.
    pub fn import_snapshot(&mut self, snap: ResyncSnapshot, now: SimTime) {
        self.st.store = snap.store;
        self.st.decided = snap.decided;
        self.st.log = snap.log;
        self.st.local.clear();
        self.st.remote.clear();
        self.st.recount_undecided();
        self.st.locks = bcastdb_db::LockManager::new();
        match (
            &mut self.proto,
            snap.reliable,
            snap.causal_clock,
            snap.atomic,
        ) {
            (Proto::Reliable(p), Some(w), _, _) => p.resume(&w, snap.view.clone()),
            (Proto::Causal(p), _, Some(vc), _) => p.resume(&vc, snap.view.clone()),
            (Proto::Atomic(p), _, _, Some(s)) => p.resume(&s, snap.view.clone()),
            (Proto::P2p(p), _, _, _) => p.resume(),
            _ => {}
        }
        if let (Some(m), Some(v)) = (&mut self.member, snap.member_view) {
            m.resume(v, now);
        }
        self.tick_armed = false;
        self.last_suspected.clear();
        // Anything queued for batching at crash time is stale: discard it.
        // A leftover FlushBatch timer is harmless (flushing empty is a
        // no-op), so just let the next send re-arm.
        if let Some(b) = &mut self.batcher {
            b.flush_all();
        }
        self.flush_armed = false;
    }

    fn flush(&mut self, mut fx: Effects, ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>) {
        for id in fx.pauses.drain(..) {
            ctx.set_timer(self.cfg.think_time, ReplicaTimer::ReadStep(id));
        }
        for id in fx.write_pauses.drain(..) {
            ctx.set_timer(self.cfg.think_time, ReplicaTimer::WriteStep(id));
        }
        let me = ctx.me();
        let now = ctx.now();
        for (dest, msg) in fx.sends.drain(..) {
            let kind = msg.kind();
            let phase = msg.phase();
            for to in dest_iter(dest, me, ctx.n_sites()) {
                if to == me {
                    continue; // self-deliveries are handled internally
                }
                // Kind and phase counters move together at this single call
                // site, so the per-phase totals sum to the flat counts by
                // construction. This is the *logical* accounting: with
                // batching on, the message is recorded here (when enqueued)
                // and the wire transmission is recorded at batch flush, so
                // the logical counts are identical with batching on or off.
                self.st.metrics.record_send(kind, phase);
                self.st.tracer.emit(|| TraceEvent::Send {
                    at: now,
                    from: me,
                    to,
                    phase,
                });
                match &mut self.batcher {
                    Some(b) => {
                        let full = b.push(to, msg.clone());
                        if let Some(batch) = full {
                            self.send_wire_batch(batch, ctx);
                        }
                    }
                    None => match ctx.send(to, msg.clone()) {
                        SendOutcome::Dropped => {
                            self.st.tracer.emit(|| TraceEvent::Drop {
                                at: now,
                                from: me,
                                to,
                                phase,
                            });
                        }
                        SendOutcome::Duplicated => {
                            // A fault-plan duplicate means two wire copies
                            // of one logical message: trace the second Send
                            // so delivered <= sent still holds per link.
                            // Metrics deliberately count one logical send.
                            self.st.tracer.emit(|| TraceEvent::Send {
                                at: now,
                                from: me,
                                to,
                                phase,
                            });
                        }
                        SendOutcome::Accepted => {}
                    },
                }
            }
        }
        self.arm_flush(ctx);
        // Hand the drained (but still allocated) buffers back for the next
        // step.
        self.scratch = fx;
    }

    /// Hands one coalesced batch to the network as a single sized
    /// transmission, recording the wire-level accounting. Even a batch of
    /// one message travels in the envelope, so a flushed run's network
    /// message count *is* its wire-batch count.
    fn send_wire_batch(
        &mut self,
        batch: Batch<ReplicaMsg>,
        ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>,
    ) {
        let now = ctx.now();
        let me = ctx.me();
        let to = batch.to;
        let msgs = batch.msgs.len() as u64;
        let bytes = batch.bytes;
        self.st.metrics.record_wire_batch(msgs, bytes as u64);
        self.st.stats.observe("batch.flush_msgs", msgs);
        self.st.stats.observe("batch.flush_bytes", bytes as u64);
        self.st.tracer.emit(|| TraceEvent::BatchFlushed {
            at: now,
            from: me,
            to,
            msgs,
            bytes: bytes as u64,
        });
        // The phase list is only consumed if the envelope is lost, but it
        // must be captured before the messages move into the wire payload.
        // Inline storage keeps the common (delivered, small-batch) case
        // allocation-free; only a tracer-off run can skip it entirely.
        let mut phases: InlineVec<Phase, 16> = InlineVec::new();
        if self.st.tracer.is_enabled() {
            phases.extend(batch.msgs.iter().map(|m| m.phase()));
        }
        match ctx.send_sized(to, ReplicaMsg::Batch(batch.msgs), bytes) {
            SendOutcome::Dropped => {
                // The whole envelope was lost: trace the loss of every
                // logical message it carried, mirroring the unbatched path.
                for phase in phases {
                    self.st.tracer.emit(|| TraceEvent::Drop {
                        at: now,
                        from: me,
                        to,
                        phase,
                    });
                }
            }
            SendOutcome::Duplicated => {
                // The whole envelope was duplicated: every logical message
                // it carried will be delivered twice, so trace the second
                // Send of each, mirroring the unbatched path.
                for phase in phases {
                    self.st.tracer.emit(|| TraceEvent::Send {
                        at: now,
                        from: me,
                        to,
                        phase,
                    });
                }
            }
            SendOutcome::Accepted => {}
        }
    }

    /// Schedules the flush-window timer when messages are waiting and no
    /// timer is pending. No-op with batching off.
    fn arm_flush(&mut self, ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>) {
        let Some(window) = self.cfg.batch_window else {
            return;
        };
        let pending = self.batcher.as_ref().is_some_and(|b| !b.is_empty());
        if pending && !self.flush_armed {
            self.flush_armed = true;
            ctx.set_timer(window, ReplicaTimer::FlushBatch);
        }
    }

    fn arm_tick(&mut self, ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>) {
        // Ticks are only scheduled while someone needs them: the membership
        // service (heartbeats), the baseline (timeout checks), or the causal
        // protocol's null messages. Otherwise an idle cluster quiesces.
        let proto_wants = match &self.proto {
            Proto::P2p(_) => self.st.has_undecided(),
            Proto::Causal(p) => p.needs_ticks(&self.st),
            // Loss-recovery mode: tick while undecided so gaps get filled.
            Proto::Reliable(_) => self.cfg.relay && self.st.has_undecided(),
            Proto::Atomic(_) => false,
        };
        let need = self.member.is_some() || proto_wants;
        if need && !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(self.cfg.tick_every, ReplicaTimer::Tick);
        }
    }

    fn member_tick(&mut self, fx: &mut Effects, now: SimTime) {
        let Some(m) = &mut self.member else { return };
        let (events, outbound) = m.tick(now);
        for ob in outbound {
            fx.send(ob.dest, ReplicaMsg::Member(ob.wire));
        }
        // Snapshot the failure detector's *speculative* suspicion set after
        // the tick (view installs refresh liveness for re-admitted members),
        // before `apply_member_events` needs `&mut self`. The speculation
        // window is half the eviction timeout: eviction installs the
        // shrunken view at the very tick full suspicion fires, so a fast
        // commit only beats the view change if it suspects sooner. Half the
        // timeout still dwarfs the worst-case link latency, which is all
        // the safety argument needs (DESIGN.md §15).
        let suspected = self.cfg.fast_commit.then(|| {
            let window = SimDuration::from_micros(self.cfg.suspect_after.as_micros() / 2);
            m.suspected_within(now, window)
        });
        self.apply_member_events(fx, now, events);
        if let Some(suspected) = suspected {
            let me = self.st.me;
            for &s in suspected.difference(&self.last_suspected) {
                self.st.tracer.emit(|| TraceEvent::Suspect {
                    at: now,
                    site: me,
                    suspect: s,
                });
            }
            self.last_suspected.clone_from(&suspected);
            match &mut self.proto {
                Proto::Reliable(p) => p.on_suspect(&mut self.st, fx, now, &suspected),
                Proto::Causal(p) => p.on_suspect(&mut self.st, fx, now, &suspected),
                // The baseline decides over all n sites and the atomic
                // protocol's delivery is ack-free: no quorum to shrink.
                Proto::P2p(_) | Proto::Atomic(_) => {}
            }
        }
    }

    fn apply_member_events(&mut self, fx: &mut Effects, now: SimTime, events: Vec<MemberEvent>) {
        for ev in events {
            match ev {
                MemberEvent::ViewInstalled(view) => {
                    let view_id = view.id;
                    let members = view.members;
                    let me = self.st.me;
                    let roster: Vec<SiteId> = members.iter().copied().collect();
                    self.st.tracer.emit(move || TraceEvent::ViewChange {
                        at: now,
                        site: me,
                        members: roster,
                    });
                    match &mut self.proto {
                        Proto::P2p(p) => {
                            // Baseline: abort in-flight txns from departed
                            // origins; surviving traffic continues.
                            let gone: Vec<_> = self
                                .st
                                .remote
                                .keys()
                                .filter(|t| {
                                    !members.contains(&t.origin) && !self.st.decided.contains_key(t)
                                })
                                .copied()
                                .collect();
                            for txn in gone {
                                let mut events = EventBuf::new();
                                self.st.apply_remote_abort(
                                    txn,
                                    AbortReason::ViewChange,
                                    now,
                                    &mut events,
                                );
                                p.handle_events(&mut self.st, fx, now, events);
                            }
                        }
                        Proto::Reliable(p) => p.set_view(&mut self.st, fx, now, members),
                        Proto::Causal(p) => p.set_view(&mut self.st, fx, now, members),
                        Proto::Atomic(p) => p.set_view(&mut self.st, fx, now, view_id, members),
                    }
                }
                MemberEvent::Isolated => {
                    // Outside every majority view: abort everything pending
                    // locally; the site blocks until it rejoins.
                    let pending: Vec<_> = self.st.local.keys().copied().collect();
                    for txn in pending {
                        let mut events = EventBuf::new();
                        self.st
                            .abort_local(txn, AbortReason::ViewChange, now, &mut events);
                        self.dispatch_events(fx, now, events);
                    }
                }
            }
        }
    }

    /// Delivers and dispatches one (possibly unbatched) incoming message:
    /// emits its `Deliver` trace event and routes it to the protocol,
    /// membership service, or recovery handler it belongs to.
    fn handle_one(
        &mut self,
        fx: &mut Effects,
        now: SimTime,
        me: SiteId,
        from: SiteId,
        msg: ReplicaMsg,
    ) {
        let phase = msg.phase();
        self.st.tracer.emit(|| TraceEvent::Deliver {
            at: now,
            from,
            to: me,
            phase,
        });
        match (msg, &mut self.proto) {
            (ReplicaMsg::R(wire), Proto::Reliable(p)) => {
                p.on_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::C(wire), Proto::Causal(p)) => p.on_wire(&mut self.st, fx, now, from, wire),
            (ReplicaMsg::C(wire), Proto::Atomic(p)) => {
                p.on_causal_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::ASeq(wire), Proto::Atomic(p)) => {
                p.on_seq_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::AIsis(wire), Proto::Atomic(p)) => {
                p.on_isis_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::ARing(wire), Proto::Atomic(p)) => {
                p.on_ring_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::P2p(m), Proto::P2p(p)) => p.on_msg(&mut self.st, fx, now, from, m),
            (ReplicaMsg::CRetrans(wire), Proto::Causal(p)) => {
                p.on_retrans_wire(&mut self.st, fx, now, from, wire)
            }
            (ReplicaMsg::RSync(watermarks), Proto::Reliable(p)) => {
                p.on_sync(fx, from, &watermarks);
            }
            (ReplicaMsg::Member(wire), _) => {
                if let Some(m) = &mut self.member {
                    let (events, outbound) = m.on_wire(from, wire, now);
                    for ob in outbound {
                        fx.send(ob.dest, ReplicaMsg::Member(ob.wire));
                    }
                    self.apply_member_events(fx, now, events);
                }
            }
            _ => {
                // Message for a protocol this cluster does not run — or a
                // nested batch, which the flush path never produces; drop.
            }
        }
    }

    fn dispatch_events(&mut self, fx: &mut Effects, now: SimTime, events: EventBuf) {
        if events.is_empty() {
            return;
        }
        match &mut self.proto {
            Proto::P2p(p) => p.handle_events(&mut self.st, fx, now, events),
            Proto::Reliable(p) => p.handle_events(&mut self.st, fx, now, events),
            Proto::Causal(p) => p.handle_events(&mut self.st, fx, now, events),
            Proto::Atomic(p) => p.handle_events(&mut self.st, fx, now, events),
        }
    }
}

impl Node for ReplicaNode {
    type Msg = ReplicaMsg;
    type Timer = ReplicaTimer;

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>,
        from: SiteId,
        msg: ReplicaMsg,
    ) {
        let now = ctx.now();
        let mut fx = std::mem::take(&mut self.scratch);
        if let Some(m) = &mut self.member {
            m.heard_from(from, now);
        }
        let me = ctx.me();
        match msg {
            // Unwrap a batch envelope: each inner message is delivered and
            // processed in push order, exactly as if it had travelled
            // alone. The envelope itself never enters accounting.
            ReplicaMsg::Batch(msgs) => {
                for m in msgs {
                    self.handle_one(&mut fx, now, me, from, m);
                }
            }
            msg => self.handle_one(&mut fx, now, me, from, msg),
        }
        self.flush(fx, ctx);
        self.arm_tick(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ReplicaMsg, ReplicaTimer>, tag: ReplicaTimer) {
        let now = ctx.now();
        let mut fx = std::mem::take(&mut self.scratch);
        match tag {
            ReplicaTimer::Submit(spec) => {
                if self.is_operational() {
                    let (_, events) = self.st.begin_txn(now, spec);
                    self.dispatch_events(&mut fx, now, events);
                }
            }
            ReplicaTimer::ReadStep(id) => {
                let mut events = EventBuf::new();
                self.st.advance_reads(id, now, &mut events);
                self.dispatch_events(&mut fx, now, events);
            }
            ReplicaTimer::WriteStep(id) => match &mut self.proto {
                Proto::Reliable(p) => p.continue_write(&mut self.st, &mut fx, now, id),
                Proto::Causal(p) => p.continue_write(&mut self.st, &mut fx, now, id),
                Proto::Atomic(p) => p.continue_write(&mut self.st, &mut fx, now, id),
                Proto::P2p(_) => {} // the baseline paces writes by its acks
            },
            ReplicaTimer::FlushBatch => {
                self.flush_armed = false;
                let batches = match &mut self.batcher {
                    Some(b) => b.flush_all(),
                    None => Vec::new(),
                };
                for batch in batches {
                    self.send_wire_batch(batch, ctx);
                }
            }
            ReplicaTimer::Tick => {
                self.tick_armed = false;
                match &mut self.proto {
                    Proto::P2p(p) => p.on_tick(&mut self.st, &mut fx, now),
                    Proto::Causal(p) => p.on_tick(&mut self.st, &mut fx, now),
                    Proto::Reliable(p) => {
                        if self.cfg.relay && self.st.has_undecided() {
                            p.on_tick(&mut fx);
                        }
                    }
                    Proto::Atomic(_) => {}
                }
                self.member_tick(&mut fx, now);
            }
        }
        self.flush(fx, ctx);
        self.arm_tick(ctx);
    }

    /// Contributes this replica's gauges to a metrics sample, under the
    /// canonical `s<site>.` prefix. Read-only by contract — the sampler
    /// must never change protocol behavior.
    fn sample_stats(&self, sample: &mut Sample) {
        let me = self.st.me;
        sample.set_site(me, "lock_waiters", self.st.locks.waiting_count() as u64);
        sample.set_site(me, "lock_keys", self.st.locks.active_keys() as u64);
        sample.set_site(
            me,
            "undecided_remote",
            self.st.undecided_remote_count() as u64,
        );
        sample.set_site(me, "local_active", self.st.local_active_count() as u64);
        // Retransmission pressure: the causal protocol's retransmissions
        // and the reliable protocol's sync rounds, straight from the
        // per-site logical message accounting.
        sample.set_site(me, "retrans", self.st.metrics.counters.get("msg_retrans"));
        sample.set_site(me, "sync", self.st.metrics.counters.get("msg_sync"));
        if let Some(b) = &self.batcher {
            sample.set_site(me, "batch_pending_msgs", b.pending_msgs() as u64);
            sample.set_site(me, "batch_pending_bytes", b.pending_bytes() as u64);
        }
        // Ring-backend pipeline gauges, only present when the ring runs —
        // other backends keep their metrics output byte-identical.
        if let Proto::Atomic(p) = &self.proto {
            if let Some((inflight, forwarded)) = p.ring_gauges() {
                sample.set_site(me, "ring.inflight", inflight);
                sample.set_site(me, "ring.forwarded", forwarded);
            }
        }
    }
}
