//! The public facade: a replicated-database cluster running inside the
//! deterministic simulator.

use crate::engine::{NodeConfig, ReplicaNode};
use crate::metrics::Metrics;
use crate::payload::{AbcastImpl, ProtocolKind, ReplicaTimer};
use crate::placement::Placement;
use crate::state::ConflictPolicy;
use bcastdb_db::sg::SgViolation;
use bcastdb_db::{HistoryRecorder, Key, TxnId, TxnSpec, Value};
use bcastdb_sim::stats::{render_jsonl, Sample, StatsHandle, StatsRegistry};
use bcastdb_sim::telemetry::{
    JsonlSink, PhaseCounts, RingSink, SpanBuilder, TraceEvent, TraceInvariants, TraceSink,
    TraceViolation, Tracer, TxnRef, TxnSpan,
};
use bcastdb_sim::{
    FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime, Simulation, SiteId, WheelStats,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::rc::Rc;

/// The fate of a submitted transaction, as known at its origin site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed everywhere.
    Committed,
    /// Aborted.
    Aborted,
    /// Still in flight (or lost to a crash).
    Pending,
}

/// Cluster-wide configuration. Build via [`Cluster::builder`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub sites: usize,
    /// Protocol to run.
    pub protocol: ProtocolKind,
    /// Simulation seed.
    pub seed: u64,
    /// Network profile.
    pub net: NetworkConfig,
    /// Conflict policy (ablation A2).
    pub policy: ConflictPolicy,
    /// Atomic-broadcast implementation (ablation A1). `None` (default)
    /// picks per group size: the pipelined ring for `sites >= 16`, where
    /// the A1 saturation sweep shows it staying bandwidth-bound while the
    /// leader-based backends collapse, and the sequencer below that.
    pub abcast: Option<AbcastImpl>,
    /// Tick period (timeouts, null messages, membership heartbeats).
    pub tick_every: SimDuration,
    /// Point-to-point deadlock timeout.
    pub p2p_timeout: SimDuration,
    /// Causal-protocol null messages (the implicit-ack keep-alive).
    pub null_messages: bool,
    /// Run the membership service (failure experiments; prevents
    /// quiescence, so pair with [`Cluster::run_until`]).
    pub membership: bool,
    /// Failure-detector suspicion timeout.
    pub suspect_after: SimDuration,
    /// Speculative fast commit (reliable and causal protocols, membership
    /// on): decide from the surviving quorum's votes as soon as every
    /// missing voter is suspected by the failure detector, instead of
    /// waiting out the view change.
    pub fast_commit: bool,
    /// Eager broadcast relaying: every site re-forwards the first copy of
    /// each broadcast, so the reliable/causal protocols tolerate message
    /// loss (pair with a lossy [`NetworkConfig`]).
    pub relay: bool,
    /// Bounded exponential backoff (with deterministic per-site jitter) on
    /// the loss-recovery solicitation cadence — reliable `RSync`
    /// watermarks and causal gap-reporting nulls. Off by default: the
    /// fixed once-per-tick cadence stays byte-identical to prior behavior.
    pub retransmit_backoff: bool,
    /// Per-operation think time (zero = a transaction's reads are acquired
    /// and its writes broadcast in single instants; nonzero models clients
    /// that issue operations sequentially, as the paper assumes).
    pub think_time: SimDuration,
    /// Replica placement: full replication (the paper's model, default) or
    /// partial replication on a deterministic ring.
    pub placement: Placement,
    /// Structured tracing: `Some(capacity)` keeps the last `capacity`
    /// events in a ring buffer and feeds every event through the streaming
    /// invariant checker; `None` (default) disables tracing entirely.
    pub trace_capacity: Option<usize>,
    /// Stream every trace event to this JSONL file (for offline analysis
    /// with `bcast-trace`). Implies tracing even when `trace_capacity` is
    /// `None` (the ring then keeps nothing, but spans and the invariant
    /// checker still see every event).
    pub trace_jsonl: Option<PathBuf>,
    /// Bucket width for per-window commit counting
    /// ([`Metrics::commit_series`]); `None` (default) disables the series.
    pub commit_window: Option<SimDuration>,
    /// Batching flush window: `None` (default) keeps the one-message-per-
    /// transmission send path, byte-identical to the pre-batching
    /// behavior; `Some(w)` coalesces outgoing messages per destination for
    /// at most `w` before flushing them as one wire transmission. Logical
    /// per-phase message accounting is unaffected either way.
    pub batch_window: Option<SimDuration>,
    /// Size cap of one batch on the wire, in bytes (envelope included).
    pub batch_max_bytes: usize,
    /// Metrics sampling interval: `Some(iv)` attaches a
    /// [`StatsRegistry`] and samples every gauge/counter/histogram at each
    /// `iv` of virtual time; `None` (default) disables metrics entirely.
    /// Sampling is driven between events on the sim clock, so turning it
    /// on never changes the run itself — only the sample stream exists.
    pub metrics_interval: Option<SimDuration>,
    /// Write the metrics samples to this JSONL file when
    /// [`Cluster::finish_metrics_jsonl`] is called. Implies metrics with a
    /// default 1 ms interval if `metrics_interval` is unset.
    pub metrics_jsonl: Option<PathBuf>,
    /// Packet-fault plan installed on the network before the run starts:
    /// per-link, per-direction, time-windowed drop / duplicate / reorder /
    /// burst-loss / delay-spike clauses (see [`bcastdb_sim::FaultPlan`]).
    /// `None` (default) keeps the network — and the RNG stream — exactly
    /// as before the fault model existed.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            sites: 3,
            protocol: ProtocolKind::ReliableBcast,
            seed: 0,
            net: NetworkConfig::lan(),
            policy: ConflictPolicy::WoundWait,
            abcast: None,
            tick_every: SimDuration::from_millis(5),
            p2p_timeout: SimDuration::from_millis(500),
            null_messages: true,
            membership: false,
            suspect_after: SimDuration::from_millis(100),
            fast_commit: false,
            relay: false,
            retransmit_backoff: false,
            think_time: SimDuration::ZERO,
            placement: Placement::Full,
            trace_capacity: None,
            trace_jsonl: None,
            commit_window: None,
            batch_window: None,
            batch_max_bytes: 1_400,
            metrics_interval: None,
            metrics_jsonl: None,
            fault_plan: None,
        }
    }
}

/// The size-dependent default atomic-broadcast backend: leader-based
/// sequencing is cheapest in small groups (N+1 messages), but its leader
/// NIC sends N-1 payload copies per broadcast, so from 16 sites up the
/// pipelined ring — every link carries ~1x the payload bytes regardless of
/// N — is the default.
fn default_abcast(sites: usize) -> AbcastImpl {
    if sites >= 16 {
        AbcastImpl::Ring
    } else {
        AbcastImpl::Sequencer
    }
}

/// Fluent builder for [`Cluster`].
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    cfg: ClusterConfig,
}

impl ClusterBuilder {
    /// Number of replicas (≥ 1).
    pub fn sites(mut self, n: usize) -> Self {
        self.cfg.sites = n;
        self
    }

    /// Which protocol to run.
    pub fn protocol(mut self, p: ProtocolKind) -> Self {
        self.cfg.protocol = p;
        self
    }

    /// Simulation seed — same seed, same execution.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Network profile (latency/loss).
    pub fn network(mut self, net: NetworkConfig) -> Self {
        self.cfg.net = net;
        self
    }

    /// Conflict policy between update transactions.
    pub fn policy(mut self, p: ConflictPolicy) -> Self {
        self.cfg.policy = p;
        self
    }

    /// Atomic-broadcast implementation. Unset, the cluster picks by group
    /// size (see [`ClusterConfig::abcast`]).
    pub fn abcast(mut self, a: AbcastImpl) -> Self {
        self.cfg.abcast = Some(a);
        self
    }

    /// Tick period.
    pub fn tick_every(mut self, d: SimDuration) -> Self {
        self.cfg.tick_every = d;
        self
    }

    /// Point-to-point deadlock timeout.
    pub fn p2p_timeout(mut self, d: SimDuration) -> Self {
        self.cfg.p2p_timeout = d;
        self
    }

    /// Enable/disable causal null messages.
    pub fn null_messages(mut self, on: bool) -> Self {
        self.cfg.null_messages = on;
        self
    }

    /// Enable the membership service.
    pub fn membership(mut self, on: bool) -> Self {
        self.cfg.membership = on;
        self
    }

    /// Failure-detector suspicion timeout.
    pub fn suspect_after(mut self, d: SimDuration) -> Self {
        self.cfg.suspect_after = d;
        self
    }

    /// Enable speculative fast commit under suspicion (reliable/causal).
    pub fn fast_commit(mut self, on: bool) -> Self {
        self.cfg.fast_commit = on;
        self
    }

    /// Enable eager broadcast relaying (message-loss tolerance).
    pub fn relay(mut self, on: bool) -> Self {
        self.cfg.relay = on;
        self
    }

    /// Enable bounded exponential backoff (with deterministic jitter) on
    /// the loss-recovery solicitation cadence. Off by default.
    pub fn retransmit_backoff(mut self, on: bool) -> Self {
        self.cfg.retransmit_backoff = on;
        self
    }

    /// Per-operation think time (paces both reads and write broadcasts).
    pub fn think_time(mut self, d: SimDuration) -> Self {
        self.cfg.think_time = d;
        self
    }

    /// Replica placement (defaults to full replication).
    pub fn placement(mut self, p: Placement) -> Self {
        self.cfg.placement = p;
        self
    }

    /// Enables structured tracing: the last `capacity` events are retained
    /// for inspection via [`Cluster::trace_events`], and *every* event
    /// (retained or evicted) streams through the trace invariant checker
    /// queried via [`Cluster::check_trace_invariants`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = Some(capacity);
        self
    }

    /// Streams every trace event to a JSONL file as the run executes (and
    /// enables tracing if [`ClusterBuilder::trace`] was not called). Call
    /// [`Cluster::finish_trace_jsonl`] at the end of the run to flush it.
    pub fn trace_jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.trace_jsonl = Some(path.into());
        self
    }

    /// Enables per-window commit counting with the given bucket width; the
    /// merged series is available via [`Metrics::commit_series`] on
    /// [`Cluster::metrics`].
    pub fn commit_window(mut self, window: SimDuration) -> Self {
        self.cfg.commit_window = Some(window);
        self
    }

    /// Enables message batching with the given flush window: outgoing
    /// messages coalesce per destination and leave as one wire
    /// transmission when the window expires (or the size cap fills).
    /// Leaving this unset keeps the unbatched send path, byte-identical
    /// to runs before the batching layer existed.
    pub fn batch_window(mut self, window: SimDuration) -> Self {
        self.cfg.batch_window = Some(window);
        self
    }

    /// Size cap of one batch on the wire, in bytes (envelope included).
    /// Only meaningful together with [`ClusterBuilder::batch_window`].
    pub fn batch_max_bytes(mut self, bytes: usize) -> Self {
        self.cfg.batch_max_bytes = bytes;
        self
    }

    /// Enables deterministic metrics sampling every `interval` of virtual
    /// time (see [`ClusterConfig::metrics_interval`]). Samples are read
    /// back with [`Cluster::metrics_samples`] or written out through
    /// [`ClusterBuilder::metrics_jsonl`].
    pub fn metrics(mut self, interval: SimDuration) -> Self {
        self.cfg.metrics_interval = Some(interval);
        self
    }

    /// Writes the metrics samples to a JSONL file at the end of the run
    /// (call [`Cluster::finish_metrics_jsonl`]); enables metrics with a
    /// 1 ms interval if [`ClusterBuilder::metrics`] was not called.
    pub fn metrics_jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.metrics_jsonl = Some(path.into());
        self
    }

    /// Installs a packet-fault plan on the network (see
    /// [`ClusterConfig::fault_plan`]). An empty plan is equivalent to none.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    /// Panics if `sites == 0`.
    pub fn build(self) -> Cluster {
        Cluster::new(self.cfg)
    }
}

/// The cluster's composite trace sink: a bounded ring buffer for
/// inspection, the streaming invariant checker, the per-transaction span
/// builder, and (optionally) a JSONL file stream. All but the ring are
/// bounded by links/transactions rather than events, so they survive
/// arbitrarily long runs that overflow the ring.
struct ClusterSink {
    ring: RingSink,
    inv: TraceInvariants,
    spans: SpanBuilder,
    jsonl: Option<JsonlSink<BufWriter<File>>>,
}

impl TraceSink for ClusterSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.ring.record(ev);
        self.inv.ingest(ev);
        self.spans.ingest(ev);
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.record(ev);
        }
    }
}

/// A simulated replicated-database cluster.
pub struct Cluster {
    sim: Simulation<ReplicaNode>,
    cfg: ClusterConfig,
    next_num: Vec<u64>,
    last_submit: Vec<SimTime>,
    trace: Option<Rc<RefCell<ClusterSink>>>,
    stats: StatsHandle,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Creates a cluster from an explicit configuration.
    ///
    /// # Panics
    /// Panics if `cfg.sites == 0`, or if `cfg.trace_jsonl` names a file
    /// that cannot be created.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.sites > 0, "a cluster needs at least one site");
        let node_cfg = NodeConfig {
            protocol: cfg.protocol,
            abcast: cfg.abcast.unwrap_or(default_abcast(cfg.sites)),
            policy: cfg.policy,
            tick_every: cfg.tick_every,
            p2p_timeout: cfg.p2p_timeout,
            null_messages: cfg.null_messages,
            membership: cfg.membership,
            suspect_after: cfg.suspect_after,
            fast_commit: cfg.fast_commit,
            relay: cfg.relay,
            retransmit_backoff: cfg.retransmit_backoff,
            think_time: cfg.think_time,
            placement: cfg.placement,
            batch_window: cfg.batch_window,
            batch_max_bytes: cfg.batch_max_bytes,
        };
        let nodes = (0..cfg.sites)
            .map(|i| ReplicaNode::new(SiteId(i), cfg.sites, node_cfg.clone()))
            .collect();
        let mut sim = Simulation::new(cfg.seed, cfg.net.clone(), nodes);
        if let Some(plan) = &cfg.fault_plan {
            sim.network_mut().install_fault_plan(plan.clone());
        }
        if let Some(window) = cfg.commit_window {
            for i in 0..cfg.sites {
                sim.node_mut(SiteId(i))
                    .state_mut()
                    .metrics
                    .enable_commit_series(window);
            }
        }
        let want_trace = cfg.trace_capacity.is_some() || cfg.trace_jsonl.is_some();
        let trace = want_trace.then(|| {
            let jsonl = cfg.trace_jsonl.as_ref().map(|path| {
                let file = File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
                JsonlSink::new(BufWriter::new(file))
            });
            let sink = Rc::new(RefCell::new(ClusterSink {
                ring: RingSink::new(cfg.trace_capacity.unwrap_or(0)),
                inv: TraceInvariants::new(),
                spans: SpanBuilder::new(),
                jsonl,
            }));
            let tracer = Tracer::new(sink.clone());
            for i in 0..cfg.sites {
                sim.node_mut(SiteId(i)).state_mut().tracer = tracer.clone();
            }
            sink
        });
        let want_metrics = cfg.metrics_interval.is_some() || cfg.metrics_jsonl.is_some();
        let stats = if want_metrics {
            let interval = cfg.metrics_interval.unwrap_or(SimDuration::from_millis(1));
            let registry = Rc::new(RefCell::new(StatsRegistry::new(interval)));
            let handle = StatsHandle::new(registry);
            for i in 0..cfg.sites {
                sim.node_mut(SiteId(i)).state_mut().stats = handle.clone();
            }
            sim.enable_stats(handle.clone());
            handle
        } else {
            StatsHandle::disabled()
        };
        if cfg.membership {
            // Bootstrap the heartbeat machinery: one staggered initial tick
            // per site (afterwards each node re-arms its own ticks).
            for i in 0..cfg.sites {
                sim.schedule_timer(
                    SimTime::from_micros(37 * i as u64),
                    SiteId(i),
                    ReplicaTimer::Tick,
                );
            }
        }
        Cluster {
            sim,
            next_num: vec![0; cfg.sites],
            last_submit: vec![SimTime::ZERO; cfg.sites],
            cfg,
            trace,
            stats,
        }
    }

    /// The configuration this cluster runs.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// All site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.cfg.sites).map(SiteId)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Submits `spec` at `site`, effective immediately. Returns the id the
    /// transaction will receive.
    pub fn submit(&mut self, site: SiteId, spec: TxnSpec) -> TxnId {
        let at = self.sim.now();
        self.submit_at(at, site, spec)
    }

    /// Submits `spec` at `site` at absolute virtual time `at`.
    ///
    /// Submissions at the same site must be scheduled in nondecreasing time
    /// order — ids are assigned in arrival order.
    ///
    /// # Panics
    /// Panics if `at` precedes an earlier submission at the same site, or
    /// `site` is out of range.
    pub fn submit_at(&mut self, at: SimTime, site: SiteId, spec: TxnSpec) -> TxnId {
        assert!(site.0 < self.cfg.sites, "site {site} out of range");
        assert!(
            at >= self.last_submit[site.0],
            "submissions at one site must be time-ordered"
        );
        self.last_submit[site.0] = at;
        self.next_num[site.0] += 1;
        let id = TxnId::new(site, self.next_num[site.0]);
        self.sim
            .schedule_timer(at, site, ReplicaTimer::Submit(spec));
        id
    }

    /// Seeds an initial value at every replica (before the measured run).
    pub fn seed_key(&mut self, key: impl Into<Key>, value: Value) {
        let key = key.into();
        for i in 0..self.cfg.sites {
            self.sim
                .node_mut(SiteId(i))
                .state_mut()
                .store
                .seed(key.clone(), value);
        }
    }

    /// Runs until the event queue drains (default budget: 10 virtual
    /// minutes — a safety valve against protocol livelock).
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run_to_quiescence(SimDuration::from_secs(600))
    }

    /// Runs until `deadline` (for experiments with perpetual timers, e.g.
    /// membership heartbeats).
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Crashes a site (fail-stop): it stops sending and receiving.
    pub fn crash(&mut self, site: SiteId) {
        if let Some(sink) = &self.trace {
            // Recorded so the invariant checker knows lost transactions are
            // expected (a crash relaxes the must-terminate invariant).
            sink.borrow_mut().record(&TraceEvent::Crash {
                at: self.sim.now(),
                site,
            });
        }
        self.sim.network_mut().crash(site);
    }

    /// Partitions the cluster into two groups that cannot communicate
    /// (both keep running; with membership enabled the majority side stays
    /// operational and the minority blocks).
    pub fn partition(&mut self, group_a: &[SiteId], group_b: &[SiteId]) {
        self.sim.network_mut().partition(group_a, group_b);
    }

    /// Heals all partitions (crashed sites stay crashed).
    pub fn heal_partitions(&mut self) {
        self.sim.network_mut().heal_all();
    }

    /// Recovers a crashed site by state transfer from `donor` — the
    /// paper's "site failures and recovery" story. Call at a quiet moment
    /// (no in-flight transactions): the recovered replica adopts the
    /// donor's committed state, decisions, view, and broadcast delivery
    /// positions, then rejoins the network; the membership service
    /// re-admits it through its heartbeats.
    ///
    /// # Panics
    /// Panics if `site == donor` or either id is out of range.
    pub fn recover(&mut self, site: SiteId, donor: SiteId) {
        assert_ne!(site, donor, "a site cannot donate to itself");
        assert!(site.0 < self.cfg.sites && donor.0 < self.cfg.sites);
        let snap = self.sim.node(donor).export_snapshot();
        let now = self.sim.now();
        self.sim.network_mut().recover(site);
        self.sim.node_mut(site).import_snapshot(snap, now);
        if self.cfg.membership {
            // Restart its tick loop (its old timers died with the crash).
            self.sim
                .schedule_timer(now + SimDuration::from_micros(41), site, ReplicaTimer::Tick);
        }
    }

    /// The fate of `id` as recorded at its origin.
    pub fn outcome(&self, id: TxnId) -> TxnOutcome {
        match self.sim.node(id.origin).state().decided.get(&id) {
            Some(true) => TxnOutcome::Committed,
            Some(false) => TxnOutcome::Aborted,
            None => TxnOutcome::Pending,
        }
    }

    /// True iff `id` committed.
    pub fn is_committed(&self, id: TxnId) -> bool {
        self.outcome(id) == TxnOutcome::Committed
    }

    /// The committed value of `key` at `site` (`None` if never written).
    pub fn committed_value(&self, site: SiteId, key: impl Into<Key>) -> Option<Value> {
        let key = key.into();
        let v = self.sim.node(site).state().store.read(&key);
        v.writer.map(|_| v.value)
    }

    /// True iff the replicas agree on every key's committed state — under
    /// partial replication, each key is compared across its holders only.
    pub fn replicas_converged(&self) -> bool {
        match self.cfg.placement {
            Placement::Full => {
                let first = self.sim.node(SiteId(0)).state();
                (1..self.cfg.sites).all(|i| {
                    first
                        .store
                        .converged_with(&self.sim.node(SiteId(i)).state().store)
                })
            }
            Placement::Ring { .. } => {
                // Every key any holder has installed must read identically
                // at every other holder of that key.
                for i in 0..self.cfg.sites {
                    let st = self.sim.node(SiteId(i)).state();
                    for (key, version) in st.store.iter() {
                        for h in self.cfg.placement.holders(key, self.cfg.sites) {
                            let other = self.sim.node(h).state();
                            if other.store.read(key) != *version {
                                return false;
                            }
                        }
                    }
                }
                true
            }
        }
    }

    /// Metrics merged across all sites.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for i in 0..self.cfg.sites {
            m.merge(&self.sim.node(SiteId(i)).state().metrics);
        }
        m
    }

    /// Metrics of one site.
    pub fn site_metrics(&self, site: SiteId) -> &Metrics {
        &self.sim.node(site).state().metrics
    }

    /// Total point-to-point messages the network carried.
    pub fn messages_sent(&self) -> u64 {
        self.sim.network().messages_sent()
    }

    /// The simulated network (fault counters, drop attribution).
    pub fn network(&self) -> &bcastdb_sim::Network {
        self.sim.network()
    }

    /// Per-phase message totals, merged across all sites. Always sums to
    /// the flat per-kind counters — both are incremented at the single
    /// send site in the engine.
    pub fn phase_counts(&self) -> PhaseCounts {
        self.metrics().phase_counts()
    }

    /// The retained tail of the trace (empty when tracing is off; bounded
    /// by the capacity passed to [`ClusterBuilder::trace`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map_or_else(Vec::new, |s| s.borrow().ring.to_vec())
    }

    /// Events dropped from the ring so far (the invariant checker still
    /// saw them).
    pub fn trace_evicted(&self) -> u64 {
        self.trace.as_ref().map_or(0, |s| s.borrow().ring.evicted())
    }

    /// Per-transaction spans reconstructed from the full trace stream so
    /// far (every event, not just the ring's tail). Empty when tracing is
    /// off.
    pub fn txn_spans(&self) -> BTreeMap<TxnRef, TxnSpan> {
        self.trace
            .as_ref()
            .map_or_else(BTreeMap::new, |s| s.borrow().spans.spans().clone())
    }

    /// Flushes and closes the JSONL trace stream, returning the number of
    /// events written. Returns `Ok(0)` when no JSONL stream was configured
    /// (or it was already finished); events traced after this call are no
    /// longer written to the file.
    ///
    /// # Errors
    /// Returns the first deferred write error, or the flush error.
    pub fn finish_trace_jsonl(&mut self) -> std::io::Result<u64> {
        let Some(sink) = &self.trace else {
            return Ok(0);
        };
        let evicted = sink.borrow().ring.evicted();
        let Some(jsonl) = sink.borrow_mut().jsonl.take() else {
            return Ok(0);
        };
        let lines = jsonl.lines();
        let mut out = jsonl.into_inner()?;
        // Trailer line: lets offline tools verify the file is complete and
        // surface in-process ring eviction loudly instead of silently
        // analyzing a truncated view.
        writeln!(
            out,
            "{{\"type\":\"trace_meta\",\"events\":{lines},\"ring_evicted\":{evicted}}}"
        )?;
        out.flush()?;
        Ok(lines)
    }

    /// The metrics samples taken so far (empty when metrics are off).
    pub fn metrics_samples(&self) -> Vec<Sample> {
        self.stats.samples()
    }

    /// Writes the metrics samples as JSONL to the path configured with
    /// [`ClusterBuilder::metrics_jsonl`], returning the number of samples
    /// written. Returns `Ok(0)` when no metrics file was configured.
    ///
    /// # Errors
    /// Returns any error from creating or writing the file.
    pub fn finish_metrics_jsonl(&mut self) -> std::io::Result<u64> {
        let Some(path) = &self.cfg.metrics_jsonl else {
            return Ok(0);
        };
        let samples = self.stats.samples();
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(render_jsonl(&samples).as_bytes())?;
        out.flush()?;
        Ok(samples.len() as u64)
    }

    /// The simulator's timing-wheel placement statistics — how many events
    /// took the wheel fast path versus the far/past heaps.
    pub fn wheel_stats(&self) -> WheelStats {
        self.sim.wheel_stats()
    }

    /// Runs the streaming trace invariant checker over everything traced
    /// so far: every delivery was sent, every submitted transaction
    /// terminated exactly once (unless a crash was recorded), and commit
    /// order agrees with atomic-broadcast delivery order. Trivially `Ok`
    /// when tracing is off.
    ///
    /// # Errors
    /// Returns the first [`TraceViolation`] found.
    pub fn check_trace_invariants(&self) -> Result<(), TraceViolation> {
        self.trace
            .as_ref()
            .map_or(Ok(()), |s| s.borrow().inv.check())
    }

    /// Like [`Cluster::check_trace_invariants`], but tolerates submitted
    /// transactions still in flight — for experiments that deliberately
    /// end with wedged transactions (e.g. the causal protocol with
    /// keep-alives disabled on a quiet network).
    ///
    /// # Errors
    /// Returns the first [`TraceViolation`] found.
    pub fn check_trace_invariants_allowing_pending(&self) -> Result<(), TraceViolation> {
        self.trace
            .as_ref()
            .map_or(Ok(()), |s| s.borrow().inv.check_allowing_pending())
    }

    /// Direct access to a replica (stores, logs, lock tables).
    pub fn replica(&self, site: SiteId) -> &ReplicaNode {
        self.sim.node(site)
    }

    /// Mutable access to a replica (test setup).
    pub fn replica_mut(&mut self, site: SiteId) -> &mut ReplicaNode {
        self.sim.node_mut(site)
    }

    /// Events processed by the simulator so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Builds the one-copy serialization graph of the whole execution and
    /// checks it (replica agreement + acyclicity).
    ///
    /// # Errors
    /// Returns the first [`SgViolation`] found.
    pub fn check_serializability(&self) -> Result<(), SgViolation> {
        self.check_serializability_among(&self.sites().collect::<Vec<_>>())
    }

    /// An equivalent serial order of every committed transaction — the
    /// constructive witness of one-copy serializability.
    ///
    /// # Errors
    /// Returns the first [`SgViolation`] found.
    pub fn serialization_order(&self) -> Result<Vec<TxnId>, SgViolation> {
        self.recorder(&self.sites().collect::<Vec<_>>())
            .serialization_order()
    }

    /// Like [`Cluster::check_serializability`], restricted to a subset of
    /// sites (failure experiments check the surviving majority only).
    ///
    /// # Errors
    /// Returns the first [`SgViolation`] found.
    pub fn check_serializability_among(&self, sites: &[SiteId]) -> Result<(), SgViolation> {
        self.recorder(sites).check()
    }

    /// Assembles the execution's history recorder from the surveyed sites.
    fn recorder(&self, sites: &[SiteId]) -> HistoryRecorder {
        let mut h = HistoryRecorder::new();
        let surveyed: std::collections::BTreeSet<SiteId> = sites.iter().copied().collect();
        for &site in sites {
            let st = self.sim.node(site).state();
            for rec in &st.terminations {
                if rec.committed {
                    h.record_commit(rec.txn, rec.reads.clone(), rec.writes.clone());
                }
            }
            h.record_site_order(site, &st.store);
        }
        // Commits whose origin is outside the surveyed set (e.g. a crashed
        // site) have no origin-side record; reconstruct them from what the
        // surveyed replicas know — the decision and the delivered write
        // set. Their reads happened at the lost origin and impose no
        // constraints the survivors can check.
        for &site in sites {
            let st = self.sim.node(site).state();
            for (txn, committed) in &st.decided {
                if *committed && !surveyed.contains(&txn.origin) {
                    if let Some(entry) = st.remote.get(txn) {
                        h.record_commit(*txn, Vec::new(), entry.ops.clone());
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_txn(key: &str, v: i64) -> TxnSpec {
        TxnSpec::new().read(key).write(key, v)
    }

    /// Every protocol commits a single uncontended transaction and
    /// replicates its write everywhere.
    #[test]
    fn single_txn_commits_on_every_protocol() {
        for proto in ProtocolKind::ALL {
            let mut c = Cluster::builder().sites(3).protocol(proto).seed(1).build();
            let id = c.submit(SiteId(0), write_txn("x", 42));
            let out = c.run_to_quiescence();
            assert!(
                matches!(out, RunOutcome::Quiesced { .. }),
                "{proto}: did not quiesce"
            );
            assert!(c.is_committed(id), "{proto}: txn did not commit");
            for s in c.sites() {
                assert_eq!(
                    c.committed_value(s, "x"),
                    Some(42),
                    "{proto}: value missing at {s}"
                );
            }
            assert!(c.replicas_converged(), "{proto}: replicas diverged");
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
        }
    }

    /// Read-only transactions commit locally with no network traffic on
    /// the broadcast protocols.
    #[test]
    fn read_only_is_free_of_messages() {
        for proto in [
            ProtocolKind::ReliableBcast,
            ProtocolKind::CausalBcast,
            ProtocolKind::AtomicBcast,
        ] {
            let mut c = Cluster::builder().sites(5).protocol(proto).seed(2).build();
            let id = c.submit(SiteId(3), TxnSpec::new().read("a").read("b"));
            c.run_to_quiescence();
            assert!(c.is_committed(id), "{proto}");
            assert_eq!(c.messages_sent(), 0, "{proto}: read-only sent messages");
        }
    }

    /// Sequential conflicting updates from different sites all commit and
    /// converge to the last writer.
    #[test]
    fn sequential_updates_converge() {
        for proto in ProtocolKind::ALL {
            let mut c = Cluster::builder().sites(4).protocol(proto).seed(3).build();
            let mut ids = Vec::new();
            for (i, v) in [(0usize, 10i64), (1, 20), (2, 30)] {
                // Space submissions out so each commits before the next.
                let at = SimTime::from_micros(i as u64 * 2_000_000);
                ids.push(c.submit_at(at, SiteId(i), write_txn("x", v)));
            }
            c.run_to_quiescence();
            for id in &ids {
                assert!(c.is_committed(*id), "{proto}: {id} aborted");
            }
            for s in c.sites() {
                assert_eq!(c.committed_value(s, "x"), Some(30), "{proto} at {s}");
            }
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
        }
    }

    /// Concurrent conflicting writers: at most one commits per protocol
    /// rules, replicas converge, history stays serializable.
    #[test]
    fn concurrent_conflicting_writers_stay_serializable() {
        for proto in ProtocolKind::ALL {
            let mut c = Cluster::builder().sites(3).protocol(proto).seed(4).build();
            let a = c.submit_at(SimTime::from_micros(0), SiteId(0), write_txn("x", 1));
            let b = c.submit_at(SimTime::from_micros(10), SiteId(1), write_txn("x", 2));
            let out = c.run_to_quiescence();
            assert!(matches!(out, RunOutcome::Quiesced { .. }), "{proto}");
            let done = [a, b]
                .iter()
                .filter(|t| c.outcome(**t) != TxnOutcome::Pending)
                .count();
            assert_eq!(done, 2, "{proto}: transactions left pending");
            assert!(c.replicas_converged(), "{proto}: replicas diverged");
            c.check_serializability()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
        }
    }

    /// Deterministic: same seed ⇒ same event count, messages, and state.
    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut c = Cluster::builder()
                .sites(4)
                .protocol(ProtocolKind::CausalBcast)
                .seed(seed)
                .build();
            for i in 0..8u64 {
                let site = SiteId((i % 4) as usize);
                c.submit_at(
                    SimTime::from_micros(i * 100),
                    site,
                    write_txn(if i % 2 == 0 { "x" } else { "y" }, i as i64),
                );
            }
            c.run_to_quiescence();
            (
                c.events_processed(),
                c.messages_sent(),
                c.metrics().commits(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, 0);
    }

    /// Tracing captures a run, the invariant checker accepts it, and the
    /// per-phase totals agree with both the flat counters and the network.
    #[test]
    fn tracing_records_and_validates_a_run() {
        for proto in ProtocolKind::ALL {
            let mut c = Cluster::builder()
                .sites(3)
                .protocol(proto)
                .trace(10_000)
                .seed(7)
                .build();
            let id = c.submit(SiteId(0), write_txn("x", 1));
            c.run_to_quiescence();
            assert!(c.is_committed(id), "{proto}");
            c.check_trace_invariants()
                .unwrap_or_else(|v| panic!("{proto}: {v}"));
            assert!(!c.trace_events().is_empty(), "{proto}: no events traced");
            assert_eq!(
                c.phase_counts().total(),
                c.metrics().messages_by_kind(),
                "{proto}: phase totals must sum to the flat kind totals"
            );
            assert_eq!(
                c.phase_counts().total(),
                c.messages_sent(),
                "{proto}: lossless run, counters must match the network"
            );
        }
    }

    /// The batching invariant: for the same seed and workload, enabling
    /// `batch_window` leaves the *logical* message accounting (per-phase
    /// and per-kind counters) and the outcomes untouched, while the
    /// network carries strictly fewer (batched) transmissions.
    ///
    /// The workload is deliberately conflict-free (one key per
    /// transaction): batching delays deliveries, and under contention a
    /// delay can legitimately flip a wound/wait or certification decision
    /// and with it the message pattern. Without conflicts every protocol's
    /// logical traffic is a pure function of the transaction structure, so
    /// the counts must match exactly.
    #[test]
    fn batching_preserves_logical_counts_and_outcomes() {
        for proto in ProtocolKind::ALL {
            let run = |window: Option<SimDuration>| {
                let mut b = Cluster::builder()
                    .sites(4)
                    .protocol(proto)
                    .trace(10_000)
                    .seed(21);
                if let Some(w) = window {
                    b = b.batch_window(w);
                }
                let mut c = b.build();
                for i in 0..6u64 {
                    let site = SiteId((i % 4) as usize);
                    c.submit_at(
                        SimTime::from_micros(i * 500),
                        site,
                        write_txn(&format!("k{i}"), i as i64),
                    );
                }
                c.run_to_quiescence();
                c.check_trace_invariants()
                    .unwrap_or_else(|v| panic!("{proto}: {v}"));
                assert!(c.replicas_converged(), "{proto}: replicas diverged");
                c
            };
            let off = run(None);
            let on = run(Some(SimDuration::from_micros(500)));
            assert_eq!(
                off.phase_counts(),
                on.phase_counts(),
                "{proto}: logical per-phase counts must not depend on batching"
            );
            assert_eq!(
                off.metrics().messages_by_kind(),
                on.metrics().messages_by_kind(),
                "{proto}: logical per-kind counts must not depend on batching"
            );
            assert_eq!(
                off.metrics().commits(),
                on.metrics().commits(),
                "{proto}: outcomes must not depend on batching"
            );
            // Wire accounting: every network transmission of the batched
            // run is a batch envelope, and there are fewer of them than
            // logical messages (coalescing actually happened).
            assert_eq!(off.metrics().wire_batches(), 0);
            assert_eq!(
                on.messages_sent(),
                on.metrics().wire_batches(),
                "{proto}: batched runs send only envelopes"
            );
            assert_eq!(
                on.metrics().wire_batched_msgs(),
                on.phase_counts().total(),
                "{proto}: every logical message must travel in some batch"
            );
            assert!(
                on.messages_sent() < off.messages_sent(),
                "{proto}: batching must reduce wire transmissions ({} vs {})",
                on.messages_sent(),
                off.messages_sent()
            );
        }
    }

    /// With `batch_window` unset the batcher is never constructed and the
    /// run is identical to the pre-batching send path — same events, same
    /// messages, same outcomes for the same seed.
    #[test]
    fn batching_off_is_the_default_and_changes_nothing() {
        let run = |explicit_default: bool| {
            let mut b = Cluster::builder()
                .sites(3)
                .protocol(ProtocolKind::CausalBcast)
                .seed(5);
            if explicit_default {
                b = b.batch_max_bytes(1_400); // cap without window: inert
            }
            let mut c = b.build();
            c.submit(SiteId(0), write_txn("x", 7));
            c.run_to_quiescence();
            (
                c.events_processed(),
                c.messages_sent(),
                c.metrics().commits(),
                c.metrics().wire_batches(),
            )
        };
        let (ev_a, msg_a, commits_a, batches_a) = run(false);
        let (ev_b, msg_b, commits_b, batches_b) = run(true);
        assert_eq!((ev_a, msg_a, commits_a), (ev_b, msg_b, commits_b));
        assert_eq!(batches_a, 0);
        assert_eq!(batches_b, 0);
    }

    /// Metrics sampling is a pure observer: enabling it changes neither
    /// event counts nor outcomes, and the stream carries the sim-level and
    /// per-site series.
    #[test]
    fn metrics_sampling_observes_without_perturbing() {
        let run = |metrics: bool| {
            let mut b = Cluster::builder()
                .sites(3)
                .protocol(ProtocolKind::CausalBcast)
                .seed(11);
            if metrics {
                b = b.metrics(SimDuration::from_millis(1));
            }
            let mut c = b.build();
            for i in 0..4u64 {
                c.submit_at(
                    SimTime::from_micros(i * 700),
                    SiteId((i % 3) as usize),
                    write_txn("x", i as i64),
                );
            }
            c.run_to_quiescence();
            c
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.events_processed(), on.events_processed());
        assert_eq!(off.messages_sent(), on.messages_sent());
        assert_eq!(off.metrics().commits(), on.metrics().commits());
        assert!(off.metrics_samples().is_empty());
        let samples = on.metrics_samples();
        assert!(!samples.is_empty(), "metrics run produced no samples");
        let last = samples.last().unwrap();
        assert!(last.values.contains_key("queue_depth"));
        assert!(last.values.contains_key("net.msgs_sent"));
        for s in 0..3 {
            assert!(
                last.values.contains_key(&format!("s{s}.undecided_remote")),
                "missing per-site gauges for site {s}"
            );
        }
        // And the stream is reproducible.
        let again = run(true);
        assert_eq!(samples, again.metrics_samples());
    }

    /// The default backend flips to the ring at 16 sites — observable via
    /// the ring-only pipeline gauges in the metrics stream — and an
    /// explicit choice always wins over the size heuristic.
    #[test]
    fn abcast_default_flips_to_ring_at_sixteen_sites() {
        assert_eq!(default_abcast(15), AbcastImpl::Sequencer);
        assert_eq!(default_abcast(16), AbcastImpl::Ring);
        let run = |sites: usize, pick: Option<AbcastImpl>| {
            let mut b = Cluster::builder()
                .sites(sites)
                .protocol(ProtocolKind::AtomicBcast)
                .metrics(SimDuration::from_millis(1))
                .seed(13);
            if let Some(a) = pick {
                b = b.abcast(a);
            }
            let mut c = b.build();
            let id = c.submit(SiteId(0), write_txn("x", 1));
            c.run_to_quiescence();
            assert!(c.is_committed(id));
            assert!(c.replicas_converged());
            let samples = c.metrics_samples();
            samples
                .last()
                .is_some_and(|s| s.values.contains_key("s0.ring.inflight"))
        };
        assert!(!run(3, None), "small groups default to the sequencer");
        assert!(run(16, None), "16 sites default to the ring");
        assert!(
            !run(16, Some(AbcastImpl::Sequencer)),
            "an explicit backend overrides the size default"
        );
        assert!(run(3, Some(AbcastImpl::Ring)));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let _ = Cluster::builder().sites(0).build();
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_submission_panics() {
        let mut c = Cluster::builder().sites(2).build();
        c.submit_at(SimTime::from_micros(100), SiteId(0), TxnSpec::new());
        c.submit_at(SimTime::from_micros(50), SiteId(0), TxnSpec::new());
    }
}
