//! Per-site state shared by all four protocols: the local database
//! substrate, origin-side transaction driving (read phase, read-only
//! commit), remote write-lock acquisition with pluggable conflict policy,
//! and commit/abort application.
//!
//! The protocols differ in *how they disseminate writes and decide
//! commitment*; everything below that line — strict 2PL, read phases at the
//! origin, applying a decided transaction — is identical and lives here.
//! State-changing helpers return [`LocalEvent`]s that the protocol layer
//! reacts to (e.g. "all write locks granted → cast my vote").

use crate::metrics::{AbortReason, Metrics};
use crate::payload::TxnPriority;
use crate::placement::Placement;
use bcastdb_db::lock::{GrantedFromQueue, LockMode, RequestOutcome};
use bcastdb_db::sg::ObservedVersion;
use bcastdb_db::{Key, LockManager, RedoLog, Store, TxnId, TxnSpec, WriteOp};
use bcastdb_sim::telemetry::{TraceEvent, Tracer, TxnRef};
use bcastdb_sim::{SimTime, SiteId, StatsHandle};
use std::collections::{BTreeMap, BTreeSet};

/// The trace-level reference for a transaction id (`bcastdb-sim` cannot
/// depend on the database crate, so its events carry this mirror type).
pub fn txn_ref(id: TxnId) -> TxnRef {
    TxnRef {
        origin: id.origin,
        num: id.num,
    }
}

/// How write-lock conflicts between update transactions are resolved
/// (ablation A2). Both are deadlock-free priority schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Older requester wounds younger holder; younger requester waits.
    #[default]
    WoundWait,
    /// Older requester waits; younger requester dies.
    WaitDie,
}

/// Where an origin-side transaction currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalPhase {
    /// Acquiring read locks; `next` is the index of the next read.
    AcquiringReads {
        /// Index into the spec's read list.
        next: usize,
    },
    /// All reads done; the protocol owns the transaction now.
    WritePhase,
}

/// Origin-side state of a transaction submitted at this site.
#[derive(Debug, Clone)]
pub struct LocalTxn {
    /// Transaction identity.
    pub id: TxnId,
    /// Global priority (submission time, origin, number).
    pub prio: TxnPriority,
    /// The full specification.
    pub spec: TxnSpec,
    /// Virtual submission time (latency measurement baseline).
    pub submitted: SimTime,
    /// Current phase.
    pub phase: LocalPhase,
    /// Versions observed by completed reads.
    pub reads_observed: Vec<(Key, ObservedVersion)>,
}

/// Per-site state of a *broadcast* update transaction (kept at every site,
/// including the origin).
#[derive(Debug, Clone)]
pub struct RemoteTxn {
    /// Transaction identity.
    pub id: TxnId,
    /// Global priority.
    pub prio: TxnPriority,
    /// Write operations delivered so far, in index order.
    pub ops: Vec<WriteOp>,
    /// Total write count (known from any op's `of` field or the commit
    /// request).
    pub n_writes: Option<usize>,
    /// Keys whose exclusive lock has been granted at this site.
    pub keys_granted: BTreeSet<Key>,
    /// Keys requested but still queued.
    pub keys_waiting: BTreeSet<Key>,
    /// True once this site delivered the transaction's commit request.
    pub commit_req_seen: bool,
    /// Set when this site has condemned the transaction.
    pub doomed: Option<AbortReason>,
    /// This site's 2PC vote, once cast (reliable protocol).
    pub my_vote: Option<bool>,
    /// YES votes collected (reliable protocol).
    pub votes_yes: BTreeSet<SiteId>,
    /// NO votes collected (reliable protocol).
    pub votes_no: BTreeSet<SiteId>,
}

impl RemoteTxn {
    fn new(id: TxnId, prio: TxnPriority) -> Self {
        RemoteTxn {
            id,
            prio,
            ops: Vec::new(),
            n_writes: None,
            keys_granted: BTreeSet::new(),
            keys_waiting: BTreeSet::new(),
            commit_req_seen: false,
            doomed: None,
            my_vote: None,
            votes_yes: BTreeSet::new(),
            votes_no: BTreeSet::new(),
        }
    }

    /// True iff the full write set is delivered and every key's exclusive
    /// lock is held at this site.
    pub fn fully_prepared(&self) -> bool {
        match self.n_writes {
            Some(n) => self.ops.len() == n && self.keys_waiting.is_empty(),
            None => false,
        }
    }
}

/// Events surfaced to the protocol layer by common state transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalEvent {
    /// A local transaction finished its read phase and has writes; the
    /// protocol must start the write phase.
    ReadsComplete(TxnId),
    /// A broadcast transaction now holds all its write locks here (and its
    /// full write set is known).
    RemotePrepared(TxnId),
    /// This site condemned a broadcast transaction (wound / wait-die); the
    /// protocol decides how to communicate it.
    RemoteDoomed(TxnId, AbortReason),
    /// A previously queued exclusive lock was granted (the point-to-point
    /// baseline acknowledges individual writes on this event).
    RemoteKeyGranted(TxnId, Key),
    /// A local transaction acquired one read lock and is pausing for its
    /// per-operation think time; the engine schedules the next step.
    ReadPaused(TxnId),
}

/// The event buffer handed to every state-transition method.
///
/// A single delivery or timer step produces at most a couple of events, so
/// inline storage keeps the hot path allocation-free; rare bursts (a view
/// change aborting many transactions at once) spill to the heap and stay
/// correct. The alloc-audit test in `crates/bench/tests/` ratchets this.
pub type EventBuf = bcastdb_sim::inline::InlineVec<LocalEvent, 4>;

/// The result of a terminated transaction, recorded for the cluster facade
/// and the serializability checker.
#[derive(Debug, Clone)]
pub struct TerminationRecord {
    /// The transaction.
    pub txn: TxnId,
    /// `true` = committed.
    pub committed: bool,
    /// Observed read versions (origin only; empty elsewhere).
    pub reads: Vec<(Key, ObservedVersion)>,
    /// Write set (committed transactions only).
    pub writes: Vec<WriteOp>,
}

/// All protocol-independent state of one replica.
#[derive(Debug)]
pub struct SiteState {
    /// This site.
    pub me: SiteId,
    /// System size.
    pub n: usize,
    /// The replica's copy of the database.
    pub store: Store,
    /// Strict-2PL lock table.
    pub locks: LockManager,
    /// Redo log.
    pub log: RedoLog,
    /// Metrics for this site.
    pub metrics: Metrics,
    /// Structured trace sink (disabled by default; zero overhead when off).
    pub tracer: Tracer,
    /// Metrics registry handle (disabled by default; zero overhead when
    /// off). Protocol layers push histograms through it; the sampler reads
    /// gauges off this state at period boundaries.
    pub stats: StatsHandle,
    /// Conflict policy between update transactions.
    pub policy: ConflictPolicy,
    /// Whether delivered writes may wound *broadcast* (remote or
    /// write-phase local) lock holders. True only in the reliable
    /// protocol, whose votes make site-local wounds globally visible; the
    /// causal protocol must not wound broadcast transactions site-locally
    /// because its implicit acknowledgements cannot retract an ack.
    pub wound_remote: bool,
    /// Whether delivered writes may wound local update transactions still
    /// in their read phase (purely local, so always safe); the
    /// point-to-point baseline disables this and resolves conflicts by
    /// waiting + timeout, which is exactly how it deadlocks.
    pub wound_local_readers: bool,
    /// Whether a blocked local read triggers waits-for-graph deadlock
    /// detection, dooming an unprepared broadcast transaction in the cycle
    /// (the reliable protocol publishes the doom as a NO vote). Keeps
    /// read-only transactions deadlock-free without ever aborting them.
    pub resolve_read_deadlocks: bool,
    /// Rank exclusive lock queues by *delivery order* instead of
    /// transaction age. The causal protocol needs this: its committed
    /// conflicting transactions are always causally ordered, and causal
    /// delivery order is the one per-key apply order every site shares
    /// (it has no vote round to serialize applies). The vote-based
    /// protocols keep age ranks, which their deadlock prevention relies on.
    pub rank_by_delivery: bool,
    /// Per-operation think time in the read phase (zero = reads complete
    /// within one event, the fastest client model; nonzero spreads a read
    /// phase over virtual time as the paper's sequential-operation model
    /// does).
    pub think: bcastdb_sim::SimDuration,
    /// Which keys this site stores (defaults to full replication, the
    /// paper's model). Non-held keys are never locked or installed here.
    pub placement: Placement,
    rank_counter: u64,
    /// Transactions originated here, still running.
    pub local: BTreeMap<TxnId, LocalTxn>,
    /// Broadcast transactions being processed here.
    pub remote: BTreeMap<TxnId, RemoteTxn>,
    /// Terminated transactions: `true` = committed.
    pub decided: BTreeMap<TxnId, bool>,
    /// Origin-side records for the serializability checker.
    pub terminations: Vec<TerminationRecord>,
    next_txn_num: u64,
    /// Count of `remote` entries absent from `decided`, so
    /// [`SiteState::has_undecided`] — consulted on every tick-arming
    /// decision — is O(1) instead of a scan of the full-history `remote`
    /// map. Maintained by [`SiteState::remote_entry`] and the
    /// `mark_decided` helper; recomputed wholesale after a state transfer
    /// by [`SiteState::recount_undecided`].
    undecided_remote: usize,
}

impl SiteState {
    /// Fresh state for site `me` of an `n`-site system.
    pub fn new(me: SiteId, n: usize, policy: ConflictPolicy) -> Self {
        SiteState {
            me,
            n,
            store: Store::new(),
            locks: LockManager::new(),
            log: RedoLog::new(),
            metrics: Metrics::new(),
            tracer: Tracer::disabled(),
            stats: StatsHandle::disabled(),
            policy,
            wound_remote: true,
            wound_local_readers: true,
            resolve_read_deadlocks: false,
            rank_by_delivery: false,
            think: bcastdb_sim::SimDuration::ZERO,
            placement: Placement::Full,
            rank_counter: 0,
            local: BTreeMap::new(),
            remote: BTreeMap::new(),
            decided: BTreeMap::new(),
            terminations: Vec::new(),
            next_txn_num: 0,
            undecided_remote: 0,
        }
    }

    /// Records this site's verdict on a broadcast transaction in the trace:
    /// an explicit 2PC vote, a causal-protocol NACK (`yes == false`), or a
    /// deterministic certification outcome (atomic protocol).
    pub fn trace_vote(&self, id: TxnId, yes: bool, now: SimTime) {
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Vote {
            at: now,
            site: me,
            txn: txn_ref(id),
            yes,
        });
    }

    /// Records the origin handing a transaction's commit request (the final
    /// leg of its write dissemination) to the network — the boundary between
    /// the `disseminate` and `order_wait` latency segments. Each protocol
    /// calls this exactly once per update transaction, at its single
    /// commit-request broadcast site.
    pub fn trace_commit_req_out(&self, id: TxnId, now: SimTime) {
        self.tracer.emit(|| TraceEvent::CommitReqOut {
            at: now,
            txn: txn_ref(id),
        });
    }

    /// Records this site fixing a transaction's outcome separately from
    /// applying it (the causal protocol's decision point: its implicit
    /// acknowledgement set just completed, whether or not the lock queue
    /// lets the commit apply yet).
    pub fn trace_decided(&self, id: TxnId, commit: bool, now: SimTime) {
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Decided {
            at: now,
            site: me,
            txn: txn_ref(id),
            commit,
        });
    }

    /// Records a speculative fast decision: this site fixed `id`'s outcome
    /// from a surviving quorum's votes without waiting for suspected
    /// members, and bumps the `fast_commits` counter. The regular
    /// `Decided`/`Commit` events follow immediately.
    pub fn trace_fast_decide(&mut self, id: TxnId, now: SimTime) {
        self.metrics.counters.incr("fast_commits");
        let me = self.me;
        self.tracer.emit(|| TraceEvent::FastDecide {
            at: now,
            site: me,
            txn: txn_ref(id),
        });
    }

    /// True iff this site knows of any transaction that has not terminated.
    pub fn has_undecided(&self) -> bool {
        !self.local.is_empty() || self.undecided_remote > 0
    }

    /// Number of remote transactions this site has seen but not yet
    /// decided (the O(1) counter behind [`SiteState::has_undecided`]),
    /// exposed as a metrics gauge.
    pub fn undecided_remote_count(&self) -> usize {
        self.undecided_remote
    }

    /// Number of local transactions still in flight at this site.
    pub fn local_active_count(&self) -> usize {
        self.local.len()
    }

    /// Records a transaction's outcome, keeping the undecided-remote count
    /// in step. Every `decided` insertion must go through here.
    fn mark_decided(&mut self, id: TxnId, committed: bool) {
        if self.decided.insert(id, committed).is_none() && self.remote.contains_key(&id) {
            self.undecided_remote -= 1;
        }
    }

    /// Recomputes the undecided-remote count from scratch. For the one
    /// place that rewrites `remote` and `decided` wholesale (state
    /// transfer into a recovering replica) rather than through
    /// [`SiteState::remote_entry`] and decision application.
    pub fn recount_undecided(&mut self) {
        self.undecided_remote = self
            .remote
            .keys()
            .filter(|t| !self.decided.contains_key(t))
            .count();
    }

    // ------------------------------------------------------------------
    // Origin-side driving
    // ------------------------------------------------------------------

    /// Registers a freshly submitted transaction and starts its read phase.
    /// Returns the id plus any events (the read phase may complete
    /// immediately).
    pub fn begin_txn(&mut self, now: SimTime, spec: TxnSpec) -> (TxnId, EventBuf) {
        self.next_txn_num += 1;
        let id = TxnId::new(self.me, self.next_txn_num);
        let prio = TxnPriority {
            ts: now.as_micros(),
            origin: self.me,
            num: self.next_txn_num,
        };
        let read_only = spec.is_read_only();
        self.tracer.emit(|| TraceEvent::Submit {
            at: now,
            txn: txn_ref(id),
            read_only,
        });
        self.local.insert(
            id,
            LocalTxn {
                id,
                prio,
                spec,
                submitted: now,
                phase: LocalPhase::AcquiringReads { next: 0 },
                reads_observed: Vec::new(),
            },
        );
        let mut events = EventBuf::new();
        self.advance_reads(id, now, &mut events);
        (id, events)
    }

    /// Pushes a local transaction through its read phase as far as locks
    /// allow. Emits [`LocalEvent::ReadsComplete`] when an update
    /// transaction becomes ready for its write phase; commits read-only
    /// transactions on the spot.
    pub fn advance_reads(&mut self, id: TxnId, now: SimTime, events: &mut EventBuf) {
        loop {
            let Some(txn) = self.local.get(&id) else {
                return; // aborted meanwhile
            };
            let LocalPhase::AcquiringReads { next } = txn.phase else {
                return;
            };
            if next >= txn.spec.reads().len() {
                // Read phase complete: observe the versions now (locks held).
                let keys: Vec<Key> = txn.spec.reads().to_vec();
                let observed: Vec<(Key, ObservedVersion)> = keys
                    .iter()
                    .map(|k| (k.clone(), self.store.read(k).writer))
                    .collect();
                let txn = self.local.get_mut(&id).expect("present");
                txn.reads_observed = observed;
                self.tracer.emit(|| TraceEvent::LocksAcquired {
                    at: now,
                    txn: txn_ref(id),
                });
                if txn.spec.is_read_only() {
                    self.commit_read_only(id, now, events);
                } else {
                    let txn = self.local.get_mut(&id).expect("present");
                    txn.phase = LocalPhase::WritePhase;
                    events.push(LocalEvent::ReadsComplete(id));
                }
                return;
            }
            let key = txn.spec.reads()[next].clone();
            match self.locks.request(id, &key, LockMode::Shared) {
                RequestOutcome::Granted => {
                    let txn = self.local.get_mut(&id).expect("present");
                    txn.phase = LocalPhase::AcquiringReads { next: next + 1 };
                    // With think time, pause after each acquired read (the
                    // engine schedules the next step); zero think time
                    // acquires the whole read set in one event.
                    if !self.think.is_zero() && next + 1 < txn.spec.reads().len() {
                        events.push(LocalEvent::ReadPaused(id));
                        return;
                    }
                }
                RequestOutcome::Conflict { .. } => {
                    // Readers always queue behind queued writers (rank MAX):
                    // letting an older reader jump a pending write would let
                    // it observe a state where later transactions are
                    // applied but earlier ones are not. Priority ranks only
                    // order writers among themselves.
                    self.locks.enqueue(id, &key, LockMode::Shared, u64::MAX);
                    // A blocked read can close a reader/writer waiting
                    // cycle; break it by dooming an unprepared broadcast
                    // transaction in the cycle (never a reader).
                    if self.resolve_read_deadlocks {
                        self.resolve_deadlock(events);
                    }
                    // Mark progress so the grant callback resumes at the
                    // right index (the queued read is `next`).
                    return;
                }
            }
        }
    }

    /// Commits a read-only transaction locally: record, measure, release.
    fn commit_read_only(&mut self, id: TxnId, now: SimTime, events: &mut EventBuf) {
        let txn = self.local.remove(&id).expect("present");
        let latency = now.saturating_since(txn.submitted);
        self.metrics.commit_readonly(latency, now);
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Commit {
            at: now,
            site: me,
            txn: txn_ref(id),
        });
        self.mark_decided(id, true);
        self.terminations.push(TerminationRecord {
            txn: id,
            committed: true,
            reads: txn.reads_observed,
            writes: Vec::new(),
        });
        let granted = self.locks.release_all(id);
        self.process_grants(granted, now, events);
    }

    /// Aborts a transaction originated here. Safe in any phase; releases
    /// its locks and records metrics.
    pub fn abort_local(
        &mut self,
        id: TxnId,
        reason: AbortReason,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        let Some(gone) = self.local.remove(&id) else {
            return; // already gone
        };
        self.metrics.abort(reason);
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Abort {
            at: now,
            site: me,
            txn: txn_ref(id),
            reason: reason.counter().to_string(),
        });
        if gone.spec.is_read_only() {
            // Only the atomic protocol ever does this (the price of
            // acknowledgement-free commitment); tracked separately so the
            // read-only experiments can report it.
            self.metrics.counters.incr("aborts_readonly");
        }
        self.mark_decided(id, false);
        self.log.log_abort(id);
        self.terminations.push(TerminationRecord {
            txn: id,
            committed: false,
            reads: Vec::new(),
            writes: Vec::new(),
        });
        let granted = self.locks.release_all(id);
        self.process_grants(granted, now, events);
    }

    // ------------------------------------------------------------------
    // Remote (broadcast) transaction processing
    // ------------------------------------------------------------------

    /// Returns (creating if needed) the remote entry for `id`. A smaller
    /// (older) priority refines any placeholder recorded earlier — votes
    /// can arrive before the write ops that carry the real priority.
    pub fn remote_entry(&mut self, id: TxnId, prio: TxnPriority) -> &mut RemoteTxn {
        if !self.remote.contains_key(&id) && !self.decided.contains_key(&id) {
            self.undecided_remote += 1;
        }
        let e = self
            .remote
            .entry(id)
            .or_insert_with(|| RemoteTxn::new(id, prio));
        if prio < e.prio {
            e.prio = prio;
        }
        e
    }

    /// Handles a delivered write operation: records it and tries to acquire
    /// its exclusive lock under the configured conflict policy.
    ///
    /// Emits [`LocalEvent::RemotePrepared`] when this grant completes the
    /// transaction's lock set, and [`LocalEvent::RemoteDoomed`] for every
    /// transaction condemned in the process.
    pub fn deliver_write_op(
        &mut self,
        id: TxnId,
        prio: TxnPriority,
        op: WriteOp,
        of: usize,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        if self.decided.contains_key(&id) {
            return; // already terminated (e.g. wounded before this op arrived)
        }
        let entry = self.remote_entry(id, prio);
        entry.ops.push(op.clone());
        entry.n_writes = Some(of);
        if entry.doomed.is_some() {
            return; // no point locking for a condemned transaction
        }
        let key = op.key;
        if !self.placement.is_holder(self.me, &key, self.n) {
            // Not a replica of this key: record the op (write-set
            // knowledge) but take no lock and never install it.
            self.check_prepared(id, events);
            return;
        }
        let already = {
            let entry = self.remote.get(&id).expect("present");
            entry.keys_granted.contains(&key) || entry.keys_waiting.contains(&key)
        };
        if !already {
            self.acquire_write_lock(id, prio, &key, now, events);
        }
        self.check_prepared(id, events);
    }

    /// Attempts to take the exclusive lock on `key` for broadcast
    /// transaction `id`, applying the conflict policy against current
    /// holders.
    fn acquire_write_lock(
        &mut self,
        id: TxnId,
        prio: TxnPriority,
        key: &Key,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        loop {
            match self.locks.request(id, key, LockMode::Exclusive) {
                RequestOutcome::Granted => {
                    let entry = self.remote.get_mut(&id).expect("present");
                    entry.keys_granted.insert(key.clone());
                    return;
                }
                RequestOutcome::Conflict { holders } => {
                    let mut wounded_someone = false;
                    for holder in holders {
                        if holder == id {
                            continue;
                        }
                        match self.classify_holder(holder) {
                            HolderKind::ReadOnlyLocal => {
                                // Writers wait for read-only transactions —
                                // the paper guarantees they never abort.
                            }
                            HolderKind::UpdateLocalReadPhase => {
                                if !self.wound_local_readers {
                                    continue; // wait (baseline: may deadlock)
                                }
                                let holder_prio = self.local[&holder].prio;
                                if self.should_wound(prio, holder_prio) {
                                    self.abort_local(holder, AbortReason::Wounded, now, events);
                                    wounded_someone = true;
                                } else if self.policy == ConflictPolicy::WaitDie
                                    && !prio.older_than(&holder_prio)
                                {
                                    self.doom_remote(id, AbortReason::WaitDie, events);
                                    return;
                                }
                            }
                            HolderKind::RemoteUndecided => {
                                if !self.wound_remote {
                                    continue; // wait; ordered conflicts queue
                                }
                                // A local transaction in its write phase may
                                // hold read locks before its own broadcast
                                // comes back; materialize its remote entry so
                                // dooming it has somewhere to land.
                                if !self.remote.contains_key(&holder) {
                                    let Some(lp) = self.local.get(&holder).map(|l| l.prio) else {
                                        continue; // unknown holder: just wait
                                    };
                                    self.remote_entry(holder, lp);
                                }
                                let hp = self.remote[&holder].prio;
                                let holder_voted = self.remote[&holder].my_vote == Some(true);
                                if holder_voted {
                                    // A locally-prepared holder (YES vote
                                    // cast) can no longer be wounded — the
                                    // vote cannot be retracted. An *older*
                                    // requester must not wait either (two
                                    // mutually-prepared transactions would
                                    // deadlock), so the requester is doomed
                                    // instead: this site votes NO for it.
                                    //
                                    // Under wound-wait a *younger* requester
                                    // may wait: every wait edge then points
                                    // from younger to older and no cycle can
                                    // close. Under wait-die the normal edges
                                    // point the other way (older waits for
                                    // younger), so mixing in younger-waits-
                                    // for-prepared edges breaks the age
                                    // argument — there the requester dies
                                    // regardless of age.
                                    if prio.older_than(&hp)
                                        || self.policy == ConflictPolicy::WaitDie
                                    {
                                        self.doom_remote(id, AbortReason::Wounded, events);
                                        return;
                                    }
                                    // Younger requester waits (wound-wait).
                                } else if self.should_wound(prio, hp) {
                                    self.doom_remote(holder, AbortReason::Wounded, events);
                                    // Holder keeps its locks until its abort
                                    // decision; we queue behind it.
                                } else if self.policy == ConflictPolicy::WaitDie
                                    && !prio.older_than(&hp)
                                {
                                    self.doom_remote(id, AbortReason::WaitDie, events);
                                    return;
                                }
                            }
                            HolderKind::Terminated => {
                                // Lock about to be released; just queue.
                            }
                        }
                    }
                    if wounded_someone {
                        // A wound released locks synchronously; retry the
                        // request before queueing.
                        continue;
                    }
                    let rank = if self.rank_by_delivery {
                        self.rank_counter += 1;
                        self.rank_counter
                    } else {
                        prio.ts
                    };
                    self.locks.enqueue(id, key, LockMode::Exclusive, rank);
                    let entry = self.remote.get_mut(&id).expect("present");
                    entry.keys_waiting.insert(key.clone());
                    // This enqueue may close a waiting cycle through local
                    // readers (which are never wounded); break it now.
                    if self.resolve_read_deadlocks {
                        self.resolve_deadlock(events);
                    }
                    return;
                }
            }
        }
    }

    /// Breaks a local waits-for cycle, if one exists, by dooming the first
    /// unprepared broadcast transaction in it. Prepared (voted) holders and
    /// readers are never victims: prepared transactions terminate on their
    /// own, and the paper guarantees read-only transactions never abort.
    fn resolve_deadlock(&mut self, events: &mut EventBuf) {
        let Some(cycle) = self.locks.find_deadlock() else {
            return;
        };
        let mut candidates: Vec<TxnId> = cycle
            .into_iter()
            .filter(|t| {
                !self.decided.contains_key(t)
                    && self
                        .remote
                        .get(t)
                        .is_some_and(|e| e.my_vote.is_none() && e.doomed.is_none())
            })
            .collect();
        candidates.sort();
        if let Some(&victim) = candidates.first() {
            self.doom_remote(victim, AbortReason::Wounded, events);
        }
    }

    /// Called when `id` becomes locally prepared (its YES vote is about to
    /// go out): any *older* broadcast transaction queued behind its locks
    /// would be waiting on a vote that can no longer be retracted — the
    /// forbidden older-waits-for-prepared configuration. Doom those waiters
    /// now (this site votes NO for them). Under wound-wait the older
    /// requester could never have queued behind an unvoted younger holder;
    /// under wait-die it legally does, so this hook is what keeps the
    /// prepared rule airtight for both policies.
    pub fn doom_older_waiters_behind(&mut self, id: TxnId, events: &mut EventBuf) {
        let Some(entry) = self.remote.get(&id) else {
            return;
        };
        let hp = entry.prio;
        // Every lock the voter holds counts — including the shared locks
        // protecting its own reads at its origin: an older writer queued
        // behind one of those is just as stuck as one behind an exclusive
        // lock.
        let keys: Vec<Key> = self
            .locks
            .locks_of(id)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in keys {
            for (w, mode) in self.locks.queued(&k) {
                if mode != LockMode::Exclusive || w == id {
                    continue;
                }
                let doomable = self.remote.get(&w).is_some_and(|we| {
                    we.prio.older_than(&hp) && we.doomed.is_none() && we.my_vote.is_none()
                }) && !self.decided.contains_key(&w);
                if doomable {
                    self.doom_remote(w, AbortReason::Wounded, events);
                }
            }
        }
    }

    fn should_wound(&self, requester: TxnPriority, holder: TxnPriority) -> bool {
        self.policy == ConflictPolicy::WoundWait && requester.older_than(&holder)
    }

    /// Condemns a broadcast transaction at this site.
    pub fn doom_remote(&mut self, id: TxnId, reason: AbortReason, events: &mut EventBuf) {
        let Some(entry) = self.remote.get_mut(&id) else {
            return;
        };
        if entry.doomed.is_none() && !self.decided.contains_key(&id) {
            entry.doomed = Some(reason);
            events.push(LocalEvent::RemoteDoomed(id, reason));
        }
    }

    fn classify_holder(&self, holder: TxnId) -> HolderKind {
        if self.decided.contains_key(&holder) {
            return HolderKind::Terminated;
        }
        if let Some(l) = self.local.get(&holder) {
            if l.spec.is_read_only() {
                return HolderKind::ReadOnlyLocal;
            }
            if matches!(l.phase, LocalPhase::AcquiringReads { .. }) {
                return HolderKind::UpdateLocalReadPhase;
            }
            // Write phase: the remote entry (same id) speaks for it.
        }
        if self.remote.contains_key(&holder) {
            return HolderKind::RemoteUndecided;
        }
        // A local update transaction whose write phase has started but whose
        // own broadcast has not come back yet: treat as remote-undecided
        // semantics with its local priority.
        HolderKind::RemoteUndecided
    }

    /// Emits [`LocalEvent::RemotePrepared`] if `id` just became fully
    /// prepared.
    pub fn check_prepared(&self, id: TxnId, events: &mut EventBuf) {
        if let Some(entry) = self.remote.get(&id) {
            if entry.doomed.is_none() && entry.fully_prepared() {
                events.push(LocalEvent::RemotePrepared(id));
            }
        }
    }

    // ------------------------------------------------------------------
    // Termination
    // ------------------------------------------------------------------

    /// Applies the commit of broadcast transaction `id` at this site:
    /// installs the writes, logs, records origin-side bookkeeping, and
    /// releases locks.
    ///
    /// # Panics
    /// Panics if the full write set has not been delivered.
    pub fn apply_commit(&mut self, id: TxnId, now: SimTime, events: &mut EventBuf) {
        if self.decided.contains_key(&id) {
            return;
        }
        let entry = self.remote.get(&id).expect("commit of unknown transaction");
        assert_eq!(
            Some(entry.ops.len()),
            entry.n_writes,
            "commit applied before full write set delivered"
        );
        let writes = entry.ops.clone();
        let held: Vec<WriteOp> = writes
            .iter()
            .filter(|w| self.placement.is_holder(self.me, &w.key, self.n))
            .cloned()
            .collect();
        self.store.apply(id, &held);
        self.log.log_commit(id, held);
        self.mark_decided(id, true);
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Commit {
            at: now,
            site: me,
            txn: txn_ref(id),
        });

        // Origin side: latency + read observations for the checker.
        if let Some(local) = self.local.remove(&id) {
            let latency = now.saturating_since(local.submitted);
            self.metrics.commit_update(latency, now);
            self.terminations.push(TerminationRecord {
                txn: id,
                committed: true,
                reads: local.reads_observed,
                writes,
            });
        }

        let granted = self.locks.release_all(id);
        self.process_grants(granted, now, events);
    }

    /// Applies the abort of broadcast transaction `id` at this site.
    pub fn apply_remote_abort(
        &mut self,
        id: TxnId,
        reason: AbortReason,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        if self.decided.contains_key(&id) {
            return;
        }
        self.mark_decided(id, false);
        self.log.log_abort(id);
        let me = self.me;
        self.tracer.emit(|| TraceEvent::Abort {
            at: now,
            site: me,
            txn: txn_ref(id),
            reason: reason.counter().to_string(),
        });
        if self.local.remove(&id).is_some() {
            // Origin records the abort (one metrics entry per transaction,
            // at its origin only).
            self.metrics.abort(reason);
            self.terminations.push(TerminationRecord {
                txn: id,
                committed: false,
                reads: Vec::new(),
                writes: Vec::new(),
            });
        }
        let granted = self.locks.release_all(id);
        self.process_grants(granted, now, events);
    }

    /// Routes queue grants produced by a lock release: read grants resume
    /// local read phases, write grants advance remote transactions.
    pub fn process_grants(
        &mut self,
        granted: Vec<GrantedFromQueue>,
        now: SimTime,
        events: &mut EventBuf,
    ) {
        for g in granted {
            match g.mode {
                LockMode::Shared => {
                    if let Some(txn) = self.local.get_mut(&g.txn) {
                        if let LocalPhase::AcquiringReads { next } = txn.phase {
                            // The queued read is `next`; it is now granted.
                            txn.phase = LocalPhase::AcquiringReads { next: next + 1 };
                            self.advance_reads(g.txn, now, events);
                        }
                    }
                }
                LockMode::Exclusive => {
                    if let Some(entry) = self.remote.get_mut(&g.txn) {
                        entry.keys_waiting.remove(&g.key);
                        entry.keys_granted.insert(g.key.clone());
                        events.push(LocalEvent::RemoteKeyGranted(g.txn, g.key.clone()));
                        self.check_prepared(g.txn, events);
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HolderKind {
    ReadOnlyLocal,
    UpdateLocalReadPhase,
    RemoteUndecided,
    Terminated,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SiteState {
        SiteState::new(SiteId(0), 3, ConflictPolicy::WoundWait)
    }

    fn prio(ts: u64, site: usize, num: u64) -> TxnPriority {
        TxnPriority {
            ts,
            origin: SiteId(site),
            num,
        }
    }

    fn wop(key: &str, v: i64) -> WriteOp {
        WriteOp {
            key: Key::new(key),
            value: v,
        }
    }

    #[test]
    fn read_only_txn_commits_immediately_when_unblocked() {
        let mut st = state();
        let (id, events) = st.begin_txn(SimTime::from_micros(5), TxnSpec::new().read("x"));
        assert!(events.is_empty(), "read-only commits without events");
        assert_eq!(st.decided.get(&id), Some(&true));
        assert_eq!(st.metrics.commits(), 1);
        assert!(st.local.is_empty());
    }

    #[test]
    fn update_txn_signals_reads_complete() {
        let mut st = state();
        let (id, events) = st.begin_txn(SimTime::ZERO, TxnSpec::new().read("x").write("y", 1));
        assert_eq!(events, vec![LocalEvent::ReadsComplete(id)]);
        assert_eq!(st.local[&id].phase, LocalPhase::WritePhase);
        assert_eq!(st.local[&id].reads_observed.len(), 1);
    }

    #[test]
    fn empty_read_set_goes_straight_to_write_phase() {
        let mut st = state();
        let (id, events) = st.begin_txn(SimTime::ZERO, TxnSpec::new().write("y", 1));
        assert_eq!(events, vec![LocalEvent::ReadsComplete(id)]);
    }

    #[test]
    fn delivered_write_op_prepares_remote_txn() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 5), 1, SimTime::ZERO, &mut events);
        assert_eq!(events, vec![LocalEvent::RemotePrepared(t)]);
        assert!(st.remote[&t].fully_prepared());
    }

    #[test]
    fn multi_op_txn_prepares_after_last_op() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 5), 2, SimTime::ZERO, &mut events);
        assert!(events.is_empty());
        st.deliver_write_op(t, prio(1, 1, 1), wop("y", 6), 2, SimTime::ZERO, &mut events);
        assert_eq!(events, vec![LocalEvent::RemotePrepared(t)]);
    }

    #[test]
    fn writer_waits_for_read_only_reader() {
        let mut st = state();
        // A long read-only transaction holding "x": block it behind an
        // unrelated queue so it stays active... simplest: a read-only txn
        // with two reads where the second is blocked.
        let t_w = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        // Pre-hold x with an exclusive remote lock so the reader queues.
        st.deliver_write_op(
            t_w,
            prio(1, 1, 1),
            wop("x", 1),
            1,
            SimTime::ZERO,
            &mut events,
        );
        // Reader arrives, queues on x.
        let (ro, ev) = st.begin_txn(SimTime::from_micros(2), TxnSpec::new().read("x"));
        assert!(ev.is_empty());
        assert!(!st.decided.contains_key(&ro), "reader waits");
        // Writer commits; reader resumes and commits.
        events.clear();
        st.apply_commit(t_w, SimTime::from_micros(9), &mut events);
        assert_eq!(st.decided.get(&ro), Some(&true));
        assert_eq!(st.store.value(&Key::new("x")), 1);
    }

    #[test]
    fn older_writer_wounds_younger_local_reader() {
        let mut st = state();
        // Pin "y" with a remote exclusive lock so the local reader stays in
        // its read phase: it gets S on "x", then queues on "y".
        let blocker = TxnId::new(SiteId(2), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            blocker,
            prio(0, 2, 1),
            wop("y", 0),
            1,
            SimTime::ZERO,
            &mut events,
        );
        let (reader, ev) = st.begin_txn(
            SimTime::from_micros(100),
            TxnSpec::new().read("x").read("y").write("z", 1),
        );
        assert!(ev.is_empty(), "reader blocked mid read phase");
        // An older remote write on x arrives and wounds the reader.
        let t_w = TxnId::new(SiteId(1), 1);
        events.clear();
        st.deliver_write_op(
            t_w,
            prio(1, 1, 1),
            wop("x", 9),
            1,
            SimTime::from_micros(101),
            &mut events,
        );
        assert!(
            events.contains(&LocalEvent::RemotePrepared(t_w)),
            "wound freed the lock"
        );
        assert_eq!(st.decided.get(&reader), Some(&false), "reader wounded");
        assert_eq!(st.metrics.counters.get("abort_wounded"), 1);
    }

    #[test]
    fn younger_writer_waits_for_older_local_reader() {
        let mut st = state();
        let (reader, _) = st.begin_txn(
            SimTime::from_micros(1),
            TxnSpec::new().read("x").write("z", 1),
        );
        let t_w = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            t_w,
            prio(500, 1, 1),
            wop("x", 9),
            1,
            SimTime::from_micros(501),
            &mut events,
        );
        assert!(events.is_empty(), "younger writer queues");
        assert!(!st.decided.contains_key(&reader));
        assert!(st.remote[&t_w].keys_waiting.contains(&Key::new("x")));
    }

    #[test]
    fn older_remote_wounds_younger_remote_holder() {
        let mut st = state();
        let young = TxnId::new(SiteId(1), 1);
        let old = TxnId::new(SiteId(2), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            young,
            prio(100, 1, 1),
            wop("x", 1),
            1,
            SimTime::ZERO,
            &mut events,
        );
        events.clear();
        st.deliver_write_op(
            old,
            prio(1, 2, 1),
            wop("x", 2),
            1,
            SimTime::ZERO,
            &mut events,
        );
        assert!(events.contains(&LocalEvent::RemoteDoomed(young, AbortReason::Wounded)));
        // Old queues behind the doomed holder until its abort is applied.
        assert!(st.remote[&old].keys_waiting.contains(&Key::new("x")));
        events.clear();
        st.apply_remote_abort(young, AbortReason::Wounded, SimTime::ZERO, &mut events);
        assert!(events.contains(&LocalEvent::RemotePrepared(old)));
    }

    #[test]
    fn prepared_voted_holder_is_never_wounded() {
        let mut st = state();
        let young = TxnId::new(SiteId(1), 1);
        let old = TxnId::new(SiteId(2), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            young,
            prio(100, 1, 1),
            wop("x", 1),
            1,
            SimTime::ZERO,
            &mut events,
        );
        st.remote.get_mut(&young).unwrap().my_vote = Some(true);
        events.clear();
        st.deliver_write_op(
            old,
            prio(1, 2, 1),
            wop("x", 2),
            1,
            SimTime::ZERO,
            &mut events,
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, LocalEvent::RemoteDoomed(t, _) if *t == young)),
            "a locally-prepared transaction must not be wounded"
        );
        // Instead the older requester is doomed at this site — the only
        // deadlock-free option once the holder's YES vote is out.
        assert!(events.contains(&LocalEvent::RemoteDoomed(old, AbortReason::Wounded)));
    }

    #[test]
    fn wait_die_kills_younger_requester() {
        let mut st = SiteState::new(SiteId(0), 3, ConflictPolicy::WaitDie);
        let old = TxnId::new(SiteId(1), 1);
        let young = TxnId::new(SiteId(2), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            old,
            prio(1, 1, 1),
            wop("x", 1),
            1,
            SimTime::ZERO,
            &mut events,
        );
        events.clear();
        st.deliver_write_op(
            young,
            prio(100, 2, 1),
            wop("x", 2),
            1,
            SimTime::ZERO,
            &mut events,
        );
        assert!(events.contains(&LocalEvent::RemoteDoomed(young, AbortReason::WaitDie)));
    }

    #[test]
    fn wait_die_lets_older_requester_wait() {
        let mut st = SiteState::new(SiteId(0), 3, ConflictPolicy::WaitDie);
        let young = TxnId::new(SiteId(1), 1);
        let old = TxnId::new(SiteId(2), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(
            young,
            prio(100, 1, 1),
            wop("x", 1),
            1,
            SimTime::ZERO,
            &mut events,
        );
        events.clear();
        st.deliver_write_op(
            old,
            prio(1, 2, 1),
            wop("x", 2),
            1,
            SimTime::ZERO,
            &mut events,
        );
        assert!(events.is_empty(), "older requester waits under wait-die");
        assert!(st.remote[&old].keys_waiting.contains(&Key::new("x")));
    }

    #[test]
    fn apply_commit_installs_and_releases() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 7), 1, SimTime::ZERO, &mut events);
        events.clear();
        st.apply_commit(t, SimTime::from_micros(10), &mut events);
        assert_eq!(st.store.value(&Key::new("x")), 7);
        assert_eq!(st.decided.get(&t), Some(&true));
        assert_eq!(st.locks.locks_of(t), vec![]);
        assert_eq!(st.log.committed(), vec![t]);
    }

    #[test]
    #[should_panic(expected = "full write set")]
    fn commit_before_full_write_set_panics() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 7), 2, SimTime::ZERO, &mut events);
        st.apply_commit(t, SimTime::ZERO, &mut events);
    }

    #[test]
    fn duplicate_decisions_are_idempotent() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 7), 1, SimTime::ZERO, &mut events);
        st.apply_commit(t, SimTime::ZERO, &mut events);
        st.apply_commit(t, SimTime::ZERO, &mut events);
        st.apply_remote_abort(t, AbortReason::NegativeVote, SimTime::ZERO, &mut events);
        assert_eq!(st.decided.get(&t), Some(&true));
        assert_eq!(st.store.value(&Key::new("x")), 7);
    }

    #[test]
    fn write_op_after_decision_is_ignored() {
        let mut st = state();
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 7), 1, SimTime::ZERO, &mut events);
        st.apply_remote_abort(t, AbortReason::NegativeVote, SimTime::ZERO, &mut events);
        events.clear();
        st.deliver_write_op(t, prio(1, 1, 1), wop("y", 1), 1, SimTime::ZERO, &mut events);
        assert!(events.is_empty());
        assert!(
            st.locks.locks_of(t).is_empty(),
            "no lock acquired post-abort"
        );
    }

    #[test]
    fn has_undecided_tracks_lifecycle() {
        let mut st = state();
        assert!(!st.has_undecided());
        let t = TxnId::new(SiteId(1), 1);
        let mut events = EventBuf::new();
        st.deliver_write_op(t, prio(1, 1, 1), wop("x", 7), 1, SimTime::ZERO, &mut events);
        assert!(st.has_undecided());
        st.apply_commit(t, SimTime::ZERO, &mut events);
        assert!(!st.has_undecided());
    }

    #[test]
    fn upgrade_own_read_lock_to_write() {
        // A transaction reads x and writes x: its broadcast write op must
        // upgrade its own origin-side shared lock.
        let mut st = state();
        let (id, ev) = st.begin_txn(SimTime::ZERO, TxnSpec::new().read("x").write("x", 1));
        assert_eq!(ev, vec![LocalEvent::ReadsComplete(id)]);
        let p = st.local[&id].prio;
        let mut events = EventBuf::new();
        st.deliver_write_op(id, p, wop("x", 1), 1, SimTime::from_micros(1), &mut events);
        assert_eq!(events, vec![LocalEvent::RemotePrepared(id)]);
        assert!(st.locks.holds(id, &Key::new("x"), LockMode::Exclusive));
    }
}
