//! Wide-area replication: the same protocols over ~20ms links instead of
//! a ~1ms LAN. The message-round differences between the protocols turn
//! into tens of milliseconds of commit latency — the baseline's
//! per-operation acknowledgement rounds become ruinous, while the atomic
//! protocol's single ordered broadcast barely notices.
//!
//! Run with: `cargo run --release --example wan_replication`

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::sim::NetworkConfig;
use bcastdb::workload::{Scenario, WorkloadRun};

fn main() {
    println!("5 replicas over a WAN (≈20ms one-way), moderate-contention workload\n");
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12}",
        "protocol", "commits", "aborts", "mean-commit", "p95-commit"
    );
    for proto in ProtocolKind::ALL {
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(proto)
            .network(NetworkConfig::wan())
            // Null-message keep-alives tuned up for WAN round trips.
            .tick_every(SimDuration::from_millis(25))
            .p2p_timeout(SimDuration::from_secs(5))
            .seed(3)
            .build();
        let run = WorkloadRun::new(Scenario::Moderate.config(), 33);
        let report = run.open_loop(&mut cluster, 25, SimDuration::from_millis(120));
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        let m = report.metrics;
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12}",
            proto.name(),
            m.commits(),
            m.aborts(),
            format!("{}", m.update_latency.mean()),
            format!("{}", m.update_latency.p95()),
        );
    }
    println!(
        "\nNote the gap between the baseline (2 round trips per WRITE plus the\n\
         vote round) and the atomic protocol (one ordered broadcast, no acks)."
    );
}
