//! Side-by-side comparison of the paper's three broadcast protocols and
//! the point-to-point baseline on one workload — a miniature of the full
//! evaluation in `crates/bench`.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::workload::WorkloadConfig;

fn main() {
    let cfg = WorkloadConfig {
        n_keys: 500,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.2,
        ..WorkloadConfig::default()
    };

    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "protocol", "commits", "aborts", "messages", "mean-lat", "p95-lat"
    );
    for proto in ProtocolKind::ALL {
        let mut cluster = Cluster::builder().sites(5).protocol(proto).seed(99).build();
        let run = WorkloadRun::new(cfg.clone(), 1234);
        let report = run.open_loop(&mut cluster, 40, SimDuration::from_millis(20));
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        let m = report.metrics;
        println!(
            "{:<10} {:>8} {:>8} {:>10} {:>12} {:>12}",
            proto.name(),
            m.commits(),
            m.aborts(),
            report.messages,
            format!("{}", m.update_latency.mean()),
            format!("{}", m.update_latency.p95()),
        );
    }
    println!("\n(all four histories verified one-copy serializable)");
}
