//! The constructive side of the correctness proof: after any run, the
//! cluster can produce an equivalent *serial* order of the committed
//! transactions (a topological order of the one-copy serialization graph),
//! plus a Graphviz rendering of the graph itself.
//!
//! Run with: `cargo run --example serialization_order`

use bcastdb::db::HistoryRecorder;
use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;

fn main() {
    let mut cluster = Cluster::builder()
        .sites(3)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(5)
        .build();

    // A small dependent chain plus an independent writer.
    let t1 = cluster.submit_at(
        SimTime::from_micros(1_000),
        SiteId(0),
        TxnSpec::new().write("x", 10),
    );
    let t2 = cluster.submit_at(
        SimTime::from_micros(40_000),
        SiteId(1),
        TxnSpec::new().read("x").write("y", 20),
    );
    let t3 = cluster.submit_at(
        SimTime::from_micros(80_000),
        SiteId(2),
        TxnSpec::new().read("y").read("x"),
    );
    let t4 = cluster.submit_at(
        SimTime::from_micros(80_000),
        SiteId(0),
        TxnSpec::new().write("z", 30),
    );
    cluster.run_to_quiescence();
    for t in [t1, t2, t3, t4] {
        assert!(cluster.is_committed(t), "{t} should commit");
    }

    let order = cluster
        .serialization_order()
        .expect("history is one-copy serializable");
    println!("equivalent serial order: {order:?}\n");

    // Rebuild the recorder to render the graph (the cluster API exposes the
    // checker; the dot export lives on the recorder itself).
    let mut h = HistoryRecorder::new();
    for site in cluster.sites().collect::<Vec<_>>() {
        let st = cluster.replica(site).state();
        for rec in &st.terminations {
            if rec.committed {
                h.record_commit(rec.txn, rec.reads.clone(), rec.writes.clone());
            }
        }
        h.record_site_order(site, &st.store);
    }
    println!("one-copy serialization graph (Graphviz):\n{}", h.to_dot());

    // The order respects the visible dependencies.
    let pos = |t: TxnId| order.iter().position(|&x| x == t).expect("in order");
    assert!(pos(t1) < pos(t2), "t2 read t1's write");
    assert!(pos(t2) < pos(t3), "t3 read t2's write");
    println!("dependency positions verified ✓");
}
