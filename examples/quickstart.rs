//! Quickstart: a 3-replica database running the paper's atomic-broadcast
//! protocol, one update transaction, and a look at the replicated result.
//!
//! Run with: `cargo run --example quickstart`

use bcastdb::prelude::*;

fn main() {
    // A 3-site fully replicated database (§5 protocol: causal writes +
    // atomic commit requests, no acknowledgements).
    let mut cluster = Cluster::builder()
        .sites(3)
        .protocol(ProtocolKind::AtomicBcast)
        .seed(42)
        .build();

    // Transactions follow the paper's model: all reads, then all writes.
    let txn = TxnSpec::new()
        .read("inventory")
        .write("inventory", 99)
        .write("audit", 1);
    let id = cluster.submit(SiteId(0), txn);

    cluster.run_to_quiescence();

    println!("transaction {id}: {:?}", cluster.outcome(id));
    for site in cluster.sites().collect::<Vec<_>>() {
        println!(
            "  {site}: inventory={:?} audit={:?}",
            cluster.committed_value(site, "inventory"),
            cluster.committed_value(site, "audit"),
        );
    }

    // Every execution is checked against the paper's correctness criterion.
    cluster
        .check_serializability()
        .expect("one-copy serializable");
    println!("history is one-copy serializable ✓");

    let m = cluster.metrics();
    println!(
        "commits={} aborts={} messages={}",
        m.commits(),
        m.aborts(),
        cluster.messages_sent()
    );
}
