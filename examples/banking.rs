//! A replicated banking ledger — the classic motivating workload for
//! replicated databases: account transfers must stay atomic and
//! serializable across all replicas while balance inquiries (read-only
//! transactions) run locally for free.
//!
//! Demonstrates the §4 causal-broadcast protocol: transfers commit through
//! *implicit acknowledgements* carried by ordinary traffic, and balance
//! checks never abort.
//!
//! Run with: `cargo run --example banking`

use bcastdb::prelude::*;

const ACCOUNTS: usize = 8;
const INITIAL_BALANCE: i64 = 1_000;

fn account(i: usize) -> String {
    format!("acct{i}")
}

fn main() {
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::CausalBcast)
        .seed(7)
        .build();

    // Seed the ledger identically at every replica.
    for i in 0..ACCOUNTS {
        cluster.seed_key(account(i), INITIAL_BALANCE);
    }

    // A round of transfers submitted from different branches (sites).
    // Each moves 100 from account i to account i+1; amounts are recomputed
    // by the client from its local read, as the paper's model prescribes
    // (reads before writes).
    let mut transfers = Vec::new();
    for i in 0..4 {
        let from = account(i);
        let to = account(i + 4);
        let spec = TxnSpec::new()
            .read(from.as_str())
            .read(to.as_str())
            .write(from.as_str(), INITIAL_BALANCE - 100)
            .write(to.as_str(), INITIAL_BALANCE + 100);
        let site = SiteId(i % 5);
        let at = SimTime::from_micros(i as u64 * 50_000);
        transfers.push(cluster.submit_at(at, site, spec));
    }

    // Balance inquiries from every branch — read-only, never aborted,
    // no messages.
    let mut audits = Vec::new();
    for s in 0..5 {
        let mut spec = TxnSpec::new();
        for i in 0..ACCOUNTS {
            spec = spec.read(account(i));
        }
        audits.push(cluster.submit_at(SimTime::from_micros(300_000), SiteId(s), spec));
    }

    cluster.run_to_quiescence();

    for t in &transfers {
        println!("transfer {t}: {:?}", cluster.outcome(*t));
    }
    for a in &audits {
        assert!(
            cluster.is_committed(*a),
            "read-only transactions never abort"
        );
    }

    // Conservation: total money is invariant at every replica.
    for site in cluster.sites().collect::<Vec<_>>() {
        let total: i64 = (0..ACCOUNTS)
            .map(|i| {
                cluster
                    .committed_value(site, account(i))
                    .unwrap_or(INITIAL_BALANCE)
            })
            .sum();
        println!("{site}: total balance {total}");
        assert_eq!(total, ACCOUNTS as i64 * INITIAL_BALANCE, "money conserved");
    }

    cluster
        .check_serializability()
        .expect("one-copy serializable");
    println!("ledger serializable across {} replicas ✓", 5);
}
