//! Fault tolerance: a replica crashes mid-run, the majority installs a new
//! view and keeps committing — "as long as the view has majority
//! membership, the system remains operational".
//!
//! Also demonstrates redo-log recovery: the crashed replica's log replays
//! to exactly the state it had committed before the crash.
//!
//! Run with: `cargo run --example failure_recovery`

use bcastdb::prelude::*;

fn main() {
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(21)
        .membership(true) // heartbeat failure detector + majority views
        .suspect_after(SimDuration::from_millis(60))
        .build();

    // Phase 1: normal operation.
    let t1 = cluster.submit_at(
        SimTime::from_micros(1_000),
        SiteId(1),
        TxnSpec::new().write("x", 1),
    );
    cluster.run_until(SimTime::from_micros(200_000));
    assert!(cluster.is_committed(t1), "pre-crash transaction commits");

    // Phase 2: site 4 crashes (fail-stop).
    println!("crashing s4 at {}", cluster.now());
    cluster.crash(SiteId(4));

    // Phase 3: let the failure detector work, then submit more load.
    cluster.run_until(SimTime::from_micros(600_000));
    let survivors: Vec<SiteId> = (0..4).map(SiteId).collect();
    for s in &survivors {
        let view = cluster.replica(*s).view_members();
        println!(
            "{s}: view={:?} operational={}",
            view,
            cluster.replica(*s).is_operational()
        );
        assert!(!view.contains(&SiteId(4)), "crashed site evicted at {s}");
    }

    let t2 = cluster.submit_at(
        SimTime::from_micros(700_000),
        SiteId(0),
        TxnSpec::new().read("x").write("x", 2),
    );
    cluster.run_until(SimTime::from_micros(1_500_000));
    assert!(
        cluster.is_committed(t2),
        "majority view keeps committing after the crash"
    );
    for s in &survivors {
        assert_eq!(cluster.committed_value(*s, "x"), Some(2));
    }
    cluster
        .check_serializability_among(&survivors)
        .expect("surviving history one-copy serializable");

    // Phase 4: the crashed replica recovers its committed state from its
    // redo log — everything it had applied before failing.
    let crashed_log = &cluster.replica(SiteId(4)).state().log;
    let recovered = crashed_log.replay();
    assert_eq!(
        recovered.value(&Key::new("x")),
        1,
        "pre-crash state recovered"
    );
    println!(
        "s4 recovered {} committed txns from its redo log",
        crashed_log.committed().len()
    );
    println!("failure + recovery scenario complete ✓");
}
