//! Regression tests pinning down bugs found during development — each of
//! these configurations once produced a serializability violation, a
//! replica divergence, or a wedge.

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::workload::WorkloadConfig;

/// A transaction's write operations are not a causal unit: one op can
/// causally precede a peer's while the next is concurrent with it. The
/// causal protocol once classified concurrency by the first op only, let
/// two conflicting transactions both commit, and diverged the replicas
/// (seed 13, 50 keys, sites 5 — the exact f3 configuration that failed).
#[test]
fn causal_per_operation_concurrency_straddle() {
    let cfg = WorkloadConfig {
        n_keys: 50,
        theta: 0.8,
        reads_per_txn: 1,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::CausalBcast)
        .seed(13)
        .build();
    let run = WorkloadRun::new(cfg, 130 + 50);
    let report = run.open_loop(&mut c, 20, SimDuration::from_millis(4));
    assert!(report.quiesced);
    assert!(
        report.converged,
        "first-op-only classification diverged here"
    );
    c.check_serializability().expect("serializable");
}

/// The same workload shape at 10 keys — a second seed-specific divergence
/// from the same root cause.
#[test]
fn causal_per_operation_concurrency_straddle_small_db() {
    let cfg = WorkloadConfig {
        n_keys: 10,
        theta: 0.8,
        reads_per_txn: 1,
        writes_per_txn: 2,
        readonly_fraction: 0.0,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::CausalBcast)
        .seed(13)
        .build();
    let run = WorkloadRun::new(cfg, 130 + 10);
    let report = run.open_loop(&mut c, 20, SimDuration::from_millis(4));
    assert!(report.quiesced && report.converged);
    c.check_serializability().expect("serializable");
}

/// Two transactions prepared (YES-voted) at their own origins and queued
/// behind each other at the opposite site once deadlocked the reliable
/// protocol: votes cannot be retracted, so the older requester must be
/// doomed instead of waiting (seed 13, 5 keys, 4 sites).
#[test]
fn reliable_cross_prepared_conflict_resolves() {
    let cfg = WorkloadConfig {
        n_keys: 5,
        theta: 0.9,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(13)
        .build();
    let run = WorkloadRun::new(cfg, 44);
    let report = run.open_loop(&mut c, 8, SimDuration::from_millis(2));
    assert!(report.quiesced, "cross-prepared transactions wedged");
    assert!(report.converged);
    c.check_serializability().expect("serializable");
}

/// The causal protocol's NACK is itself an implicit acknowledgement of the
/// commit request it rejects; crediting the ack before recording the NACK
/// once committed a transaction off the clock of its own rejection.
#[test]
fn causal_nack_recorded_before_its_own_ack() {
    let cfg = WorkloadConfig {
        n_keys: 50,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.25,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::CausalBcast)
        .seed(1)
        .build();
    let run = WorkloadRun::new(cfg, 31);
    let report = run.open_loop(&mut c, 15, SimDuration::from_millis(5));
    assert!(report.quiesced && report.converged);
    c.check_serializability().expect("serializable");
}

/// Priority-ranked lock queues once let an older *reader* jump a queued
/// write and observe later transactions applied before earlier ones.
#[test]
fn readers_never_jump_queued_writers() {
    let cfg = WorkloadConfig {
        n_keys: 20,
        theta: 0.9,
        reads_per_txn: 1,
        writes_per_txn: 2,
        reads_per_ro_txn: 5,
        readonly_fraction: 0.5,
    };
    let mut c = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::CausalBcast)
        .seed(8)
        .build();
    let run = WorkloadRun::new(cfg, 88);
    let report = run.open_loop(&mut c, 20, SimDuration::from_millis(2));
    assert!(report.quiesced && report.converged);
    c.check_serializability().expect("serializable");
}

/// Under wait-die an older writer legally queues behind an unvoted younger
/// holder; when the holder then casts its YES vote, the elder would wait
/// forever on an irrevocable vote. The prepared rule must therefore also
/// fire at vote time, and must cover the voter's *read* locks: the wedge
/// that pinned this down was a write-skew pair blocked by each other's
/// origin-side shared locks (seed 31, 10 keys, wait-die).
#[test]
fn wait_die_vote_time_doom_covers_read_locks() {
    use bcastdb::protocols::ConflictPolicy;
    let cfg = WorkloadConfig {
        n_keys: 10,
        theta: 0.8,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::ReliableBcast)
        .policy(ConflictPolicy::WaitDie)
        .seed(31)
        .build();
    let run = WorkloadRun::new(cfg, 320);
    let report = run.open_loop(&mut c, 20, SimDuration::from_millis(4));
    assert!(report.quiesced);
    assert_eq!(
        report.metrics.commits() + report.metrics.aborts(),
        100,
        "every transaction must terminate"
    );
    assert!(report.converged);
    c.check_serializability().expect("serializable");
}

/// The closed-loop reliable workload that exposed the distributed
/// reader/writer cycle (seed 11, 8 clients per site): every transaction
/// must terminate — silent wedges drain the event queue while leaving
/// transactions pending forever.
#[test]
fn reliable_closed_loop_never_wedges() {
    let cfg = WorkloadConfig {
        n_keys: 500,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.2,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::ReliableBcast)
        .seed(11)
        .build();
    let run = WorkloadRun::new(cfg, 118);
    let report = run.closed_loop(&mut c, 8, 12);
    assert!(report.quiesced);
    assert_eq!(
        report.metrics.commits() + report.metrics.aborts(),
        5 * 8 * 12,
        "every transaction must terminate"
    );
    c.check_serializability().expect("serializable");
}

/// Wait-die mixes wait directions once prepared holders enter the picture:
/// its normal edges point older→younger while younger-waits-for-prepared
/// points the other way, so cycles can close across sites. Under wait-die a
/// requester conflicting with a prepared holder must die regardless of age
/// (seed 31, 50 keys — the a2 configuration that wedged 41 transactions).
#[test]
fn wait_die_dies_on_prepared_holders() {
    use bcastdb::protocols::ConflictPolicy;
    let cfg = WorkloadConfig {
        n_keys: 50,
        theta: 0.8,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut c = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::ReliableBcast)
        .policy(ConflictPolicy::WaitDie)
        .seed(31)
        .build();
    let run = WorkloadRun::new(cfg, 360);
    let report = run.open_loop(&mut c, 20, SimDuration::from_millis(4));
    assert!(report.quiesced);
    assert!(report.all_terminated(), "wedged transactions remain");
    assert!(report.converged);
    c.check_serializability().expect("serializable");
}

/// With two sites, a commit request's implicit-ack set completes the
/// instant the remote site delivers it — so every origin-side veto (the
/// reader gate, early conflict detection against the origin's own ops)
/// must happen *before* the commit request is broadcast, or the remote
/// commits a transaction its origin is about to reject. Found by the
/// serializability property test.
///
/// This is the checked-in proptest shrink from
/// `tests/prop_serializability.proptest-regressions` (`CausalBcast,
/// sites = 2, seed = 303, n_keys = 54, …`), promoted to a named
/// deterministic test so the scenario survives even if that seed file is
/// ever pruned. Every literal below comes from the shrink; change neither
/// without the other.
#[test]
fn causal_origin_vetoes_precede_commit_request() {
    let cfg = WorkloadConfig {
        n_keys: 54,
        theta: 0.6231374462664311,
        reads_per_txn: 1,
        writes_per_txn: 3,
        reads_per_ro_txn: 3,
        readonly_fraction: 0.23811042714157357,
    };
    let mut c = Cluster::builder()
        .sites(2)
        .protocol(ProtocolKind::CausalBcast)
        .seed(303)
        .build();
    let run = WorkloadRun::new(cfg, 303 ^ 0xABCD);
    let report = run.open_loop(&mut c, 9, SimDuration::from_micros(14448));
    assert!(report.quiesced && report.all_terminated());
    assert_eq!(
        report.metrics.commits() + report.metrics.aborts(),
        18,
        "2 sites x 9 txns must all terminate exactly once"
    );
    assert!(
        report.converged,
        "origin veto raced the remote's instant ack"
    );
    c.check_serializability().expect("serializable");
}
