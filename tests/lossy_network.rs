//! Message-loss tolerance: with eager relaying enabled, the reliable and
//! causal protocols keep their guarantees on a lossy network — the whole
//! point of building on a *reliable* broadcast primitive.

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::sim::NetworkConfig;
use bcastdb::workload::WorkloadConfig;

fn lossy(p: f64) -> NetworkConfig {
    NetworkConfig::lan().with_loss(p)
}

#[test]
fn reliable_protocol_survives_five_percent_loss_with_relay() {
    let mut cluster = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::ReliableBcast)
        .network(lossy(0.05))
        .relay(true)
        .seed(61)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 100,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, 610);
    let report = run.open_loop(&mut cluster, 10, SimDuration::from_millis(10));
    assert!(report.quiesced, "lost messages wedged the cluster");
    assert!(report.converged, "replicas diverged under loss");
    assert!(
        report.metrics.commits() > 0,
        "nothing committed under 5% loss"
    );
    cluster
        .check_serializability()
        .expect("serializable under loss");
}

#[test]
fn causal_protocol_survives_five_percent_loss_with_relay() {
    let mut cluster = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::CausalBcast)
        .network(lossy(0.05))
        .relay(true)
        .seed(67)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 100,
        theta: 0.5,
        reads_per_txn: 1,
        writes_per_txn: 1,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, 670);
    let report = run.open_loop(&mut cluster, 10, SimDuration::from_millis(10));
    assert!(report.quiesced, "lost messages wedged the cluster");
    assert!(report.converged, "replicas diverged under loss");
    assert!(report.metrics.commits() > 0);
    cluster
        .check_serializability()
        .expect("serializable under loss");
}

#[test]
fn relay_costs_more_messages_but_buys_loss_tolerance() {
    // Same workload, lossless network: relay mode must cost strictly more
    // messages (the O(N²) flood) — quantifying the trade-off.
    let run_msgs = |relay: bool| {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(ProtocolKind::ReliableBcast)
            .relay(relay)
            .seed(71)
            .build();
        let id = cluster.submit(SiteId(0), TxnSpec::new().write("x", 1));
        cluster.run_to_quiescence();
        assert!(cluster.is_committed(id));
        cluster.messages_sent()
    };
    let direct = run_msgs(false);
    let relayed = run_msgs(true);
    assert!(
        relayed > direct,
        "relay ({relayed}) should cost more than direct ({direct})"
    );
}
