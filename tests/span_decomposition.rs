//! Tier-1 tests for the span/decomposition layer: for every protocol, the
//! per-segment latency decomposition reconstructed from the trace must sum
//! *exactly* (to the microsecond of virtual time) to the end-to-end commit
//! latencies the metrics layer records — the identity the `bcast-trace`
//! CLI and the T3 experiment rely on. Plus a property test that every
//! [`TraceEvent`] variant survives the JSON-Lines round trip.

use bcastdb::prelude::*;
use bcastdb::sim::telemetry::{Segment, SpanBuilder, TraceEvent, TxnRef};
use proptest::prelude::*;

const TRACE_CAPACITY: usize = 200_000;

fn run_cluster(proto: ProtocolKind, seed: u64) -> (Cluster, bcastdb::protocols::Metrics) {
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(proto)
        .trace(TRACE_CAPACITY)
        .seed(seed)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 80,
        theta: 0.7,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.25,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, seed.wrapping_mul(17));
    let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(5));
    assert!(report.quiesced, "{proto}: did not quiesce");
    assert!(report.all_terminated(), "{proto}: wedged transactions");
    (cluster, report.metrics)
}

/// The headline identity: for every committed update transaction, the five
/// segments sum to exactly the latency `Metrics` recorded at the origin.
/// Compared as sorted multisets — same committed transactions, same
/// microsecond values, no tolerance.
#[test]
fn segment_sums_equal_metrics_latencies_for_every_protocol() {
    for proto in ProtocolKind::ALL {
        let (cluster, metrics) = run_cluster(proto, 61);
        let spans = cluster.txn_spans();
        assert!(!spans.is_empty(), "{proto}: no spans reconstructed");

        let mut update_totals: Vec<u64> = spans
            .values()
            .filter(|s| !s.read_only && s.committed())
            .map(|s| {
                let d = s.decompose().unwrap_or_else(|| {
                    panic!("{proto}: committed update {:?} must decompose", s.txn)
                });
                assert_eq!(
                    Some(d.total()),
                    s.latency(),
                    "{proto}: segments must telescope to the span latency"
                );
                d.total().as_micros()
            })
            .collect();
        let mut recorded: Vec<u64> = metrics.update_latency.samples().to_vec();
        update_totals.sort_unstable();
        recorded.sort_unstable();
        assert_eq!(
            update_totals, recorded,
            "{proto}: update decomposition must match Metrics exactly"
        );

        let mut ro_totals: Vec<u64> = spans
            .values()
            .filter(|s| s.read_only && s.committed())
            .map(|s| s.latency().expect("committed").as_micros())
            .collect();
        let mut ro_recorded: Vec<u64> = metrics.readonly_latency.samples().to_vec();
        ro_totals.sort_unstable();
        ro_recorded.sort_unstable();
        assert_eq!(
            ro_totals, ro_recorded,
            "{proto}: read-only span latencies must match Metrics exactly"
        );
    }
}

/// Every protocol's dominant segment matches its mechanism: per-operation
/// ack round trips (p2p) land in `disseminate`, explicit votes (reliable)
/// and implicit acknowledgements (causal) in `votes`, and the sequencer
/// round (atomic) in `order_wait`.
#[test]
fn dominant_segments_match_protocol_mechanisms() {
    let expect = [
        (ProtocolKind::PointToPoint, Segment::Disseminate),
        (ProtocolKind::ReliableBcast, Segment::Votes),
        (ProtocolKind::CausalBcast, Segment::Votes),
        (ProtocolKind::AtomicBcast, Segment::OrderWait),
    ];
    for (proto, want) in expect {
        // Low contention, no read-only traffic: lock waits stay negligible
        // so the protocol's own mechanism is the biggest segment.
        let mut cluster = Cluster::builder()
            .sites(5)
            .protocol(proto)
            .trace(TRACE_CAPACITY)
            .seed(67)
            .build();
        let cfg = WorkloadConfig {
            n_keys: 1000,
            theta: 0.6,
            reads_per_txn: 2,
            writes_per_txn: 2,
            readonly_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let run = WorkloadRun::new(cfg, 670);
        let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(15));
        assert!(report.quiesced, "{proto}: did not quiesce");
        let summary = bcastdb::sim::telemetry::summarize(cluster.txn_spans().values());
        assert!(summary.count() > 0, "{proto}: nothing committed");
        let dominant = Segment::ALL
            .iter()
            .copied()
            .max_by_key(|s| summary.segment(*s).mean().as_micros())
            .unwrap();
        assert_eq!(dominant, want, "{proto}: unexpected dominant segment");
    }
}

/// The same spans fall out of the serialized trace: writing the events to
/// JSONL, parsing them back, and re-folding them through [`SpanBuilder`]
/// reproduces the cluster's own span map — the offline CLI sees exactly
/// what the in-process accounting saw.
#[test]
fn offline_span_reconstruction_matches_in_process() {
    let (cluster, _) = run_cluster(ProtocolKind::AtomicBcast, 71);
    assert_eq!(cluster.trace_evicted(), 0, "ring too small for this test");
    let mut rebuilt = SpanBuilder::new();
    for ev in cluster.trace_events() {
        let line = ev.to_jsonl();
        let back = TraceEvent::from_jsonl(&line).expect("round trip");
        rebuilt.ingest(&back);
    }
    assert_eq!(*rebuilt.spans(), cluster.txn_spans());
}

fn site() -> impl Strategy<Value = SiteId> {
    (0usize..64).prop_map(SiteId)
}

fn txn() -> impl Strategy<Value = TxnRef> {
    ((0usize..64), (0u64..10_000)).prop_map(|(o, n)| TxnRef {
        origin: SiteId(o),
        num: n,
    })
}

fn time() -> impl Strategy<Value = SimTime> {
    (0u64..u64::MAX / 2).prop_map(SimTime::from_micros)
}

fn phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::Prepare),
        Just(Phase::Vote),
        Just(Phase::Ack),
        Just(Phase::Decision),
        Just(Phase::Retransmit),
        Just(Phase::Membership),
    ]
}

fn reason() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("abort_wounded".to_string()),
        Just("abort_timeout".to_string()),
        Just("abort_concurrent_conflict".to_string()),
        // Exercise the JSON string escaping paths.
        Just("quoted \"reason\"".to_string()),
        Just("back\\slash".to_string()),
        Just(String::new()),
    ]
}

fn event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (time(), site(), site(), phase()).prop_map(|(at, from, to, phase)| TraceEvent::Send {
            at,
            from,
            to,
            phase
        }),
        (time(), site(), site(), phase()).prop_map(|(at, from, to, phase)| TraceEvent::Deliver {
            at,
            from,
            to,
            phase
        }),
        (time(), site(), site(), phase()).prop_map(|(at, from, to, phase)| TraceEvent::Drop {
            at,
            from,
            to,
            phase
        }),
        (time(), txn(), any::<bool>()).prop_map(|(at, txn, read_only)| TraceEvent::Submit {
            at,
            txn,
            read_only
        }),
        (time(), txn()).prop_map(|(at, txn)| TraceEvent::LocksAcquired { at, txn }),
        (time(), txn()).prop_map(|(at, txn)| TraceEvent::CommitReqOut { at, txn }),
        (time(), site(), txn(), any::<bool>()).prop_map(|(at, site, txn, yes)| TraceEvent::Vote {
            at,
            site,
            txn,
            yes
        }),
        (time(), site(), txn(), any::<bool>()).prop_map(|(at, site, txn, commit)| {
            TraceEvent::Decided {
                at,
                site,
                txn,
                commit,
            }
        }),
        (time(), site(), txn()).prop_map(|(at, site, txn)| TraceEvent::Commit { at, site, txn }),
        (time(), site(), txn(), reason()).prop_map(|(at, site, txn, reason)| TraceEvent::Abort {
            at,
            site,
            txn,
            reason
        }),
        (time(), site(), txn(), 0u64..1_000_000).prop_map(|(at, site, txn, gseq)| {
            TraceEvent::TotalOrder {
                at,
                site,
                txn,
                gseq,
            }
        }),
        (time(), site(), proptest::collection::vec(site(), 0..8))
            .prop_map(|(at, site, members)| TraceEvent::ViewChange { at, site, members }),
        (time(), site()).prop_map(|(at, site)| TraceEvent::Crash { at, site }),
        (time(), site(), site(), 1u64..64, 0u64..1_000_000).prop_map(
            |(at, from, to, msgs, bytes)| TraceEvent::BatchFlushed {
                at,
                from,
                to,
                msgs,
                bytes,
            }
        ),
        (time(), site(), site()).prop_map(|(at, site, suspect)| TraceEvent::Suspect {
            at,
            site,
            suspect
        }),
        (time(), site(), txn()).prop_map(|(at, site, txn)| TraceEvent::FastDecide {
            at,
            site,
            txn
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        max_shrink_iters: 64,
    })]

    /// Every variant, with adversarial field values (huge timestamps,
    /// empty member lists, reasons containing quotes and backslashes),
    /// survives `to_jsonl` → `from_jsonl` unchanged.
    #[test]
    fn every_trace_event_round_trips_through_jsonl(ev in event()) {
        let line = ev.to_jsonl();
        prop_assert!(!line.contains('\n'), "one event per line");
        let back = TraceEvent::from_jsonl(&line)
            .map_err(|e| TestCaseError::fail(format!("{line}: {e}")))?;
        prop_assert_eq!(&ev, &back, "line: {}", line);
        // And the serialization is stable (parse → print is identity too).
        prop_assert_eq!(back.to_jsonl(), line);
    }
}
