//! Cross-protocol integration tests: the same workloads run on all four
//! protocols must terminate every transaction, converge all replicas, and
//! produce one-copy serializable histories.

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::workload::WorkloadConfig;

fn all_protocols() -> [ProtocolKind; 4] {
    ProtocolKind::ALL
}

#[test]
fn moderate_contention_full_sweep() {
    let cfg = WorkloadConfig {
        n_keys: 50,
        theta: 0.8,
        reads_per_txn: 2,
        writes_per_txn: 2,
        readonly_fraction: 0.25,
        ..WorkloadConfig::default()
    };
    for proto in all_protocols() {
        for seed in [1u64, 2, 3] {
            let mut cluster = Cluster::builder()
                .sites(4)
                .protocol(proto)
                .seed(seed)
                .build();
            let run = WorkloadRun::new(cfg.clone(), seed * 31);
            let report = run.open_loop(&mut cluster, 15, SimDuration::from_millis(5));
            assert!(report.quiesced, "{proto}/{seed}: did not quiesce");
            assert!(report.converged, "{proto}/{seed}: replicas diverged");
            assert_eq!(
                report.metrics.commits() + report.metrics.aborts(),
                4 * 15,
                "{proto}/{seed}: lost transactions"
            );
            cluster
                .check_serializability()
                .unwrap_or_else(|v| panic!("{proto}/{seed}: {v}"));
        }
    }
}

#[test]
fn extreme_contention_single_hot_key() {
    // Everyone hammers one key: the worst case for every protocol.
    let cfg = WorkloadConfig {
        n_keys: 1,
        theta: 0.0,
        reads_per_txn: 0,
        writes_per_txn: 1,
        ..WorkloadConfig::default()
    };
    for proto in all_protocols() {
        let mut cluster = Cluster::builder().sites(3).protocol(proto).seed(5).build();
        let run = WorkloadRun::new(cfg.clone(), 77);
        let report = run.open_loop(&mut cluster, 10, SimDuration::from_micros(500));
        assert!(report.quiesced, "{proto}: hot key wedged the cluster");
        assert!(report.converged, "{proto}");
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn read_only_transactions_never_abort_on_rb_and_cb() {
    let cfg = WorkloadConfig {
        n_keys: 20,
        theta: 0.9,
        reads_per_txn: 1,
        writes_per_txn: 2,
        reads_per_ro_txn: 5,
        readonly_fraction: 0.5,
    };
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
        let mut cluster = Cluster::builder().sites(4).protocol(proto).seed(8).build();
        let run = WorkloadRun::new(cfg.clone(), 88);
        let report = run.open_loop(&mut cluster, 20, SimDuration::from_millis(2));
        assert!(report.quiesced, "{proto}");
        // The paper's guarantee: read-only transactions are never aborted
        // in the reliable and causal protocols. Since only read-phase
        // wounds could touch them and those spare read-only transactions,
        // every abort must come from update transactions.
        let commits_ro = report.metrics.counters.get("commits_readonly");
        assert!(
            commits_ro > 0,
            "{proto}: workload produced no read-only txns"
        );
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn larger_cluster_seven_sites() {
    let cfg = WorkloadConfig {
        n_keys: 100,
        theta: 0.6,
        reads_per_txn: 1,
        writes_per_txn: 1,
        ..WorkloadConfig::default()
    };
    for proto in all_protocols() {
        let mut cluster = Cluster::builder().sites(7).protocol(proto).seed(17).build();
        let run = WorkloadRun::new(cfg.clone(), 170);
        let report = run.open_loop(&mut cluster, 6, SimDuration::from_millis(10));
        assert!(report.quiesced && report.converged, "{proto}");
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn message_cost_ordering_matches_the_paper() {
    // One update transaction (2 writes), 5 sites: p2p must cost the most
    // messages, atomic-sequencer the fewest.
    let mut costs = std::collections::HashMap::new();
    for proto in all_protocols() {
        let mut cluster = Cluster::builder().sites(5).protocol(proto).seed(3).build();
        let id = cluster.submit(
            SiteId(0),
            TxnSpec::new().read("a").write("b", 1).write("c", 2),
        );
        cluster.run_to_quiescence();
        assert!(cluster.is_committed(id), "{proto}");
        costs.insert(proto, cluster.messages_sent());
    }
    let p2p = costs[&ProtocolKind::PointToPoint];
    let rb = costs[&ProtocolKind::ReliableBcast];
    let cb = costs[&ProtocolKind::CausalBcast];
    let ab = costs[&ProtocolKind::AtomicBcast];
    assert!(p2p > rb, "p2p {p2p} should exceed reliable {rb}");
    // On an otherwise-quiet cluster the causal protocol's keep-alive nulls
    // can cost as much as the votes they replace (the paper itself notes
    // implicit acks want ongoing traffic), so only >= holds for a single
    // isolated transaction; the dense-traffic comparison is experiment T1.
    assert!(
        rb >= cb,
        "reliable {rb} should not be cheaper than causal {cb}"
    );
    assert!(
        cb > ab,
        "causal {cb} should exceed atomic {ab} (acks removed)"
    );
}

#[test]
fn isis_abcast_variant_works_end_to_end() {
    use bcastdb::protocols::AbcastImpl;
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::AtomicBcast)
        .abcast(AbcastImpl::Isis)
        .seed(23)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 30,
        theta: 0.7,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, 230);
    let report = run.open_loop(&mut cluster, 10, SimDuration::from_millis(3));
    assert!(report.quiesced && report.converged);
    cluster.check_serializability().expect("serializable");
}

#[test]
fn ring_abcast_variant_works_end_to_end() {
    use bcastdb::protocols::AbcastImpl;
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::AtomicBcast)
        .abcast(AbcastImpl::Ring)
        .seed(23)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 30,
        theta: 0.7,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, 230);
    let report = run.open_loop(&mut cluster, 10, SimDuration::from_millis(3));
    assert!(report.quiesced && report.converged);
    cluster.check_serializability().expect("serializable");
}

#[test]
fn atomic_backends_yield_identical_state_on_conflict_free_workload() {
    // Same shape as the cross-protocol conflict-free test, but across the
    // three atomic-broadcast backends: disjoint keys per site means the
    // final database is determined per key by its sole writer, so all
    // backends must converge to the same state.
    use bcastdb::protocols::AbcastImpl;
    type FinalDb = Vec<(String, Option<i64>)>;
    let mut finals: Vec<(AbcastImpl, FinalDb)> = Vec::new();
    for imp in [AbcastImpl::Sequencer, AbcastImpl::Isis, AbcastImpl::Ring] {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(ProtocolKind::AtomicBcast)
            .abcast(imp)
            .seed(42)
            .build();
        for site in 0..4usize {
            for i in 0..6u64 {
                let key = format!("s{site}k{i}");
                let at = SimTime::from_micros(i * 3_000);
                cluster.submit_at(
                    at,
                    SiteId(site),
                    TxnSpec::new().write(key.as_str(), (site as i64) * 100 + i as i64),
                );
            }
        }
        cluster.run_to_quiescence();
        let m = cluster.metrics();
        assert_eq!(
            m.commits(),
            24,
            "{imp:?}: conflict-free txns must all commit"
        );
        assert_eq!(m.aborts(), 0, "{imp:?}");
        cluster.check_serializability().expect("serializable");
        let mut snapshot = Vec::new();
        for site in 0..4usize {
            for i in 0..6u64 {
                let key = format!("s{site}k{i}");
                snapshot.push((
                    key.clone(),
                    cluster.committed_value(SiteId(0), key.as_str()),
                ));
            }
        }
        finals.push((imp, snapshot));
    }
    for w in finals.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "{:?} and {:?} disagree on the final database",
            w[0].0, w[1].0
        );
    }
}

#[test]
fn wait_die_policy_works_on_reliable() {
    use bcastdb::protocols::ConflictPolicy;
    let cfg = WorkloadConfig {
        n_keys: 10,
        theta: 0.9,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    let mut cluster = Cluster::builder()
        .sites(4)
        .protocol(ProtocolKind::ReliableBcast)
        .policy(ConflictPolicy::WaitDie)
        .seed(29)
        .build();
    let run = WorkloadRun::new(cfg, 290);
    let report = run.open_loop(&mut cluster, 12, SimDuration::from_millis(1));
    assert!(report.quiesced && report.converged);
    cluster.check_serializability().expect("serializable");
}

#[test]
fn think_time_read_phases_stay_serializable() {
    // With per-operation think time, read phases span virtual time and
    // interleave with remote applies — the regime where the atomic
    // protocol wounds local readers and the others make writers wait.
    let cfg = WorkloadConfig {
        n_keys: 15,
        theta: 0.9,
        reads_per_txn: 3,
        writes_per_txn: 2,
        reads_per_ro_txn: 5,
        readonly_fraction: 0.3,
    };
    for proto in all_protocols() {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(proto)
            .think_time(SimDuration::from_millis(2))
            .seed(19)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 190);
        let report = run.open_loop(&mut cluster, 12, SimDuration::from_millis(4));
        assert!(report.quiesced, "{proto}: think-time run wedged");
        assert!(report.converged, "{proto}: diverged with think time");
        assert_eq!(
            report.metrics.commits() + report.metrics.aborts(),
            4 * 12,
            "{proto}: transactions lost"
        );
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn atomic_protocol_wounds_slow_readers() {
    // A slow read-only transaction overlapping certified applies is wounded
    // in the atomic protocol (the price of acknowledgement-free commits)
    // but never in the reliable protocol.
    let contended = WorkloadConfig {
        n_keys: 6,
        theta: 0.0,
        reads_per_txn: 0,
        writes_per_txn: 2,
        reads_per_ro_txn: 6,
        readonly_fraction: 0.4,
    };
    let run_wounds = |proto: ProtocolKind| {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(proto)
            .think_time(SimDuration::from_millis(5))
            .seed(23)
            .build();
        let run = WorkloadRun::new(contended.clone(), 233);
        let report = run.open_loop(&mut cluster, 15, SimDuration::from_millis(3));
        assert!(report.quiesced && report.converged, "{proto}");
        cluster
            .check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        report.metrics.counters.get("abort_wounded")
    };
    let atomic_wounds = run_wounds(ProtocolKind::AtomicBcast);
    assert!(
        atomic_wounds > 0,
        "atomic protocol should wound slow conflicting readers"
    );
}

#[test]
fn conflict_free_workload_yields_identical_state_across_protocols() {
    // With no conflicts (disjoint keys per site), every protocol must
    // commit everything — and since the final value of each key is then
    // determined solely by its single writer, all four protocols produce
    // the *same* final database.
    type FinalDb = Vec<(String, Option<i64>)>;
    let mut finals: Vec<(ProtocolKind, FinalDb)> = Vec::new();
    for proto in all_protocols() {
        let mut cluster = Cluster::builder().sites(4).protocol(proto).seed(42).build();
        for site in 0..4usize {
            for i in 0..6u64 {
                let key = format!("s{site}k{i}");
                let at = SimTime::from_micros(i * 3_000);
                cluster.submit_at(
                    at,
                    SiteId(site),
                    TxnSpec::new().write(key.as_str(), (site as i64) * 100 + i as i64),
                );
            }
        }
        cluster.run_to_quiescence();
        let m = cluster.metrics();
        assert_eq!(
            m.commits(),
            24,
            "{proto}: conflict-free txns must all commit"
        );
        assert_eq!(m.aborts(), 0, "{proto}");
        cluster.check_serializability().expect("serializable");
        let mut snapshot = Vec::new();
        for site in 0..4usize {
            for i in 0..6u64 {
                let key = format!("s{site}k{i}");
                snapshot.push((
                    key.clone(),
                    cluster.committed_value(SiteId(0), key.as_str()),
                ));
            }
        }
        finals.push((proto, snapshot));
    }
    for w in finals.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "{} and {} disagree on the final database",
            w[0].0, w[1].0
        );
    }
}

#[test]
fn wan_profile_all_protocols() {
    use bcastdb::sim::NetworkConfig;
    let cfg = WorkloadConfig {
        n_keys: 300,
        theta: 0.6,
        reads_per_txn: 1,
        writes_per_txn: 2,
        ..WorkloadConfig::default()
    };
    for proto in all_protocols() {
        let mut cluster = Cluster::builder()
            .sites(4)
            .protocol(proto)
            .network(NetworkConfig::wan())
            .tick_every(SimDuration::from_millis(25))
            .p2p_timeout(SimDuration::from_secs(5))
            .seed(77)
            .build();
        let run = WorkloadRun::new(cfg.clone(), 770);
        let report = run.open_loop(&mut cluster, 8, SimDuration::from_millis(100));
        assert!(report.quiesced, "{proto}: WAN run wedged");
        assert!(
            report.all_terminated(),
            "{proto}: WAN run lost transactions"
        );
        assert!(report.converged, "{proto}");
        cluster.check_serializability().expect("serializable");
    }
}
