//! Failure-injection integration tests: crashes, view changes, majority
//! operation, and recovery from the redo log.

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::workload::WorkloadConfig;
use proptest::prelude::*;

fn failure_cluster(proto: ProtocolKind, sites: usize, seed: u64) -> Cluster {
    Cluster::builder()
        .sites(sites)
        .protocol(proto)
        .seed(seed)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60))
        .build()
}

#[test]
fn majority_keeps_committing_after_crash() {
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::CausalBcast] {
        let mut c = failure_cluster(proto, 5, 31);
        let t1 = c.submit_at(
            SimTime::from_micros(1_000),
            SiteId(1),
            TxnSpec::new().write("x", 1),
        );
        c.run_until(SimTime::from_micros(150_000));
        assert!(c.is_committed(t1), "{proto}: pre-crash commit");

        c.crash(SiteId(4));
        c.run_until(SimTime::from_micros(500_000));
        for s in (0..4).map(SiteId) {
            assert!(
                !c.replica(s).view_members().contains(&SiteId(4)),
                "{proto}: crashed site still in view at {s}"
            );
            assert!(
                c.replica(s).is_operational(),
                "{proto}: {s} not operational"
            );
        }

        let t2 = c.submit_at(
            SimTime::from_micros(600_000),
            SiteId(0),
            TxnSpec::new().read("x").write("x", 2),
        );
        c.run_until(SimTime::from_micros(1_400_000));
        assert!(c.is_committed(t2), "{proto}: post-crash commit");
        let survivors: Vec<SiteId> = (0..4).map(SiteId).collect();
        c.check_serializability_among(&survivors)
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn atomic_protocol_survives_sequencer_crash() {
    // Site 0 is the fixed sequencer; crashing it forces failover to the
    // next view coordinator.
    let mut c = failure_cluster(ProtocolKind::AtomicBcast, 5, 37);
    let t1 = c.submit_at(
        SimTime::from_micros(1_000),
        SiteId(2),
        TxnSpec::new().write("a", 1),
    );
    c.run_until(SimTime::from_micros(150_000));
    assert!(c.is_committed(t1));

    c.crash(SiteId(0));
    c.run_until(SimTime::from_micros(600_000));
    for s in (1..5).map(SiteId) {
        assert!(
            c.replica(s).is_operational(),
            "{s} operational after failover"
        );
    }

    let t2 = c.submit_at(
        SimTime::from_micros(700_000),
        SiteId(1),
        TxnSpec::new().read("a").write("a", 2),
    );
    c.run_until(SimTime::from_micros(1_600_000));
    assert!(
        c.is_committed(t2),
        "commits continue under the new sequencer"
    );
    let survivors: Vec<SiteId> = (1..5).map(SiteId).collect();
    for s in &survivors {
        assert_eq!(c.committed_value(*s, "a"), Some(2));
    }
    c.check_serializability_among(&survivors)
        .expect("serializable");
}

#[test]
fn minority_partition_blocks() {
    // 2 of 5 sites cannot form a majority view: they stop committing.
    let mut c = failure_cluster(ProtocolKind::ReliableBcast, 5, 41);
    c.run_until(SimTime::from_micros(50_000));
    // Crash three sites: the remaining two are a minority.
    for s in [2, 3, 4] {
        c.crash(SiteId(s));
    }
    c.run_until(SimTime::from_micros(500_000));
    for s in [SiteId(0), SiteId(1)] {
        assert!(
            !c.replica(s).is_operational(),
            "{s} must block outside a majority view"
        );
    }
    // A transaction submitted at a blocked site is not accepted.
    let t = c.submit_at(
        SimTime::from_micros(600_000),
        SiteId(0),
        TxnSpec::new().write("x", 9),
    );
    c.run_until(SimTime::from_micros(900_000));
    assert_eq!(c.outcome(t), TxnOutcome::Pending, "minority cannot commit");
}

#[test]
fn redo_log_recovers_committed_state() {
    let mut c = failure_cluster(ProtocolKind::ReliableBcast, 3, 43);
    let t1 = c.submit_at(
        SimTime::from_micros(1_000),
        SiteId(0),
        TxnSpec::new().write("x", 1),
    );
    let t2 = c.submit_at(
        SimTime::from_micros(100_000),
        SiteId(1),
        TxnSpec::new().read("x").write("y", 2),
    );
    c.run_until(SimTime::from_micros(300_000));
    assert!(c.is_committed(t1) && c.is_committed(t2));

    // Crash site 2 and replay its log onto a fresh store.
    c.crash(SiteId(2));
    let log = &c.replica(SiteId(2)).state().log;
    let recovered = log.replay();
    let live = &c.replica(SiteId(0)).state().store;
    assert!(
        recovered.converged_with(live),
        "log replay reproduces the committed state"
    );
}

#[test]
fn in_flight_transactions_from_crashed_origin_abort() {
    // Crash an origin right after submission: under every protocol the
    // survivors must not keep its transaction pending forever once the
    // view changes. The termination mechanism differs — explicit votes
    // (reliable), implicit acks (causal), the total order (atomic), or
    // the engine's departed-origin sweep (p2p) — but the obligation is
    // the same.
    for proto in ProtocolKind::ALL {
        let mut c = failure_cluster(proto, 5, 47);
        c.run_until(SimTime::from_micros(20_000));
        // Submit at site 4 and crash it almost immediately — before votes
        // can complete (the suspicion timeout far exceeds the commit
        // latency, so pick a crash instant right after the submit timer).
        c.submit_at(
            SimTime::from_micros(21_000),
            SiteId(4),
            TxnSpec::new().write("z", 9),
        );
        c.run_until(SimTime::from_micros(21_500));
        c.crash(SiteId(4));
        c.run_until(SimTime::from_micros(800_000));
        // Survivors either committed it (decision raced the crash) or
        // aborted it via the view change; nobody may be stuck undecided.
        for s in (0..4).map(SiteId) {
            let st = c.replica(s).state();
            assert!(
                !st.has_undecided(),
                "{proto}: {s} still has undecided transactions after view change"
            );
        }
        let survivors: Vec<SiteId> = (0..4).map(SiteId).collect();
        c.check_serializability_among(&survivors)
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn crashed_site_recovers_by_state_transfer_and_rejoins() {
    for proto in [
        ProtocolKind::ReliableBcast,
        ProtocolKind::CausalBcast,
        ProtocolKind::AtomicBcast,
    ] {
        let mut c = failure_cluster(proto, 5, 53);
        // Phase 1: normal load, then crash site 4.
        let t1 = c.submit_at(
            SimTime::from_micros(1_000),
            SiteId(0),
            TxnSpec::new().write("x", 1),
        );
        c.run_until(SimTime::from_micros(150_000));
        assert!(c.is_committed(t1), "{proto}");
        c.crash(SiteId(4));
        // Phase 2: the majority commits without it.
        let t2 = c.submit_at(
            SimTime::from_micros(400_000),
            SiteId(1),
            TxnSpec::new().read("x").write("x", 2),
        );
        c.run_until(SimTime::from_micros(900_000));
        assert!(c.is_committed(t2), "{proto}");
        assert_eq!(
            c.committed_value(SiteId(4), "x"),
            Some(1),
            "{proto}: crashed site is stale"
        );
        // Phase 3: recover site 4 from site 0 and let membership re-admit it.
        c.recover(SiteId(4), SiteId(0));
        c.run_until(SimTime::from_micros(1_500_000));
        assert_eq!(
            c.committed_value(SiteId(4), "x"),
            Some(2),
            "{proto}: state transfer missed committed data"
        );
        for s in c.sites().collect::<Vec<_>>() {
            assert!(
                c.replica(s).view_members().contains(&SiteId(4)),
                "{proto}: {s} did not re-admit the recovered site"
            );
        }
        // Phase 4: the recovered site serves new transactions.
        let t3 = c.submit_at(
            SimTime::from_micros(1_600_000),
            SiteId(4),
            TxnSpec::new().read("x").write("y", 3),
        );
        c.run_until(SimTime::from_micros(2_400_000));
        assert!(c.is_committed(t3), "{proto}: recovered site cannot commit");
        for s in c.sites().collect::<Vec<_>>() {
            assert_eq!(c.committed_value(s, "y"), Some(3), "{proto} at {s}");
        }
    }
}

#[test]
fn partition_and_heal_round_trip() {
    // A 2/3 partition of five sites: the majority keeps committing, the
    // minority blocks; after healing, the minority reconciles by state
    // transfer and the cluster serves everyone again.
    let mut c = failure_cluster(ProtocolKind::ReliableBcast, 5, 59);
    c.run_until(SimTime::from_micros(50_000));

    let majority: Vec<SiteId> = (0..3).map(SiteId).collect();
    let minority: Vec<SiteId> = (3..5).map(SiteId).collect();
    c.partition(&majority, &minority);
    c.run_until(SimTime::from_micros(400_000));

    for s in &majority {
        assert!(c.replica(*s).is_operational(), "{s} majority side blocked");
    }
    for s in &minority {
        assert!(
            !c.replica(*s).is_operational(),
            "{s} minority side kept running"
        );
    }

    // Majority-side commit during the partition.
    let t = c.submit_at(
        SimTime::from_micros(450_000),
        SiteId(0),
        TxnSpec::new().write("p", 1),
    );
    c.run_until(SimTime::from_micros(900_000));
    assert!(
        c.is_committed(t),
        "majority must commit during the partition"
    );

    // Heal; minority catches up via state transfer and rejoins.
    c.heal_partitions();
    c.recover(SiteId(3), SiteId(0));
    c.recover(SiteId(4), SiteId(0));
    c.run_until(SimTime::from_micros(1_600_000));
    for s in c.sites().collect::<Vec<_>>() {
        assert_eq!(
            c.committed_value(s, "p"),
            Some(1),
            "{s} missing partition-era commit"
        );
        assert!(
            c.replica(s).is_operational(),
            "{s} not operational after heal"
        );
    }

    let t2 = c.submit_at(
        SimTime::from_micros(1_700_000),
        SiteId(4),
        TxnSpec::new().read("p").write("q", 2),
    );
    c.run_until(SimTime::from_micros(2_500_000));
    assert!(
        c.is_committed(t2),
        "healed minority site must serve transactions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0, // each case is two full simulations; don't shrink
    })]

    /// A partition that is fully healed before any traffic crosses it must
    /// leave no trace: the same workload then produces *byte-identical*
    /// metrics to a run that was never partitioned. This is the symmetry
    /// contract of `Network::sever`/`heal` — if healing ever restored only
    /// one direction of a link, the surviving cut would drop messages and
    /// the metrics would diverge.
    #[test]
    fn healed_partition_is_indistinguishable_from_no_partition(
        proto in prop_oneof![
            Just(ProtocolKind::PointToPoint),
            Just(ProtocolKind::ReliableBcast),
            Just(ProtocolKind::CausalBcast),
            Just(ProtocolKind::AtomicBcast),
        ],
        sites in 3usize..6,
        seed in 0u64..500,
        cut in 1usize..5,
        n_keys in 5usize..40,
        txns_per_site in 2usize..6,
        gap_us in 500u64..10_000,
    ) {
        let cut = cut.min(sites - 1);
        let cfg = WorkloadConfig {
            n_keys,
            theta: 0.4,
            reads_per_txn: 1,
            writes_per_txn: 2,
            reads_per_ro_txn: 2,
            readonly_fraction: 0.2,
        };
        let run_metrics = |partitioned: bool| {
            let mut c = Cluster::builder()
                .sites(sites)
                .protocol(proto)
                .seed(seed)
                .build();
            if partitioned {
                let group_a: Vec<SiteId> = (0..cut).map(SiteId).collect();
                let group_b: Vec<SiteId> = (cut..sites).map(SiteId).collect();
                c.partition(&group_a, &group_b);
            }
            // Idle window while (possibly) severed, then heal everything
            // before the first message is submitted.
            c.run_until(SimTime::from_micros(30_000));
            c.heal_partitions();
            let report = WorkloadRun::new(cfg.clone(), seed ^ 0x5a5a).open_loop(
                &mut c,
                txns_per_site,
                SimDuration::from_micros(gap_us),
            );
            prop_assert!(report.quiesced, "{proto}: did not quiesce");
            Ok(format!("{:?}", report.metrics))
        };
        let healed = run_metrics(true)?;
        let pristine = run_metrics(false)?;
        prop_assert_eq!(
            healed, pristine,
            "{}: a healed partition left residue in the metrics", proto
        );
    }
}
