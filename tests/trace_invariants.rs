//! Tier-1 integration tests for the structured trace subsystem: real
//! workloads across all four protocols must produce traces the offline
//! invariant checker accepts, the per-phase message accounting must sum to
//! the flat counters, events must round-trip through the JSON-Lines
//! format, and corrupted traces must be rejected.

use bcastdb::prelude::*;
use bcastdb::sim::telemetry::{
    check_trace, JsonlSink, Phase, TraceEvent, TraceSink, TraceViolation,
};

const TRACE_CAPACITY: usize = 200_000;

fn traced_run(proto: ProtocolKind, seed: u64) -> Cluster {
    let mut cluster = Cluster::builder()
        .sites(4)
        .protocol(proto)
        .trace(TRACE_CAPACITY)
        .seed(seed)
        .build();
    let cfg = WorkloadConfig {
        n_keys: 60,
        theta: 0.7,
        reads_per_txn: 1,
        writes_per_txn: 2,
        readonly_fraction: 0.25,
        ..WorkloadConfig::default()
    };
    let run = WorkloadRun::new(cfg, seed.wrapping_mul(31));
    let report = run.open_loop(&mut cluster, 15, SimDuration::from_millis(4));
    assert!(report.quiesced, "{proto}: did not quiesce");
    assert!(report.all_terminated(), "{proto}: wedged transactions");
    cluster
}

/// A contended workload on every protocol produces a trace the invariant
/// checker accepts: every delivery was sent, every submitted transaction
/// terminated exactly once, commits follow the total order.
#[test]
fn every_protocol_passes_the_invariant_checker_under_load() {
    for proto in ProtocolKind::ALL {
        let cluster = traced_run(proto, 41);
        cluster
            .check_trace_invariants()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
        assert_eq!(cluster.trace_evicted(), 0, "{proto}: ring too small");
        assert!(!cluster.trace_events().is_empty(), "{proto}");
    }
}

/// The per-phase totals sum to the flat per-kind counters (both are
/// incremented at the engine's single send site) and, on a lossless
/// network, to the network's own message count.
#[test]
fn phase_totals_sum_to_flat_message_counts() {
    for proto in ProtocolKind::ALL {
        let cluster = traced_run(proto, 43);
        let pc = cluster.phase_counts();
        assert_eq!(
            pc.total(),
            cluster.metrics().messages_by_kind(),
            "{proto}: phase totals must sum to the flat kind totals"
        );
        assert_eq!(
            pc.total(),
            cluster.messages_sent(),
            "{proto}: lossless run, counters must match the network"
        );
    }
}

/// Each protocol's phase breakdown has the shape the paper's cost argument
/// predicts: everyone pays prepare traffic; only the vote-based protocols
/// pay votes; the atomic protocol is the only one with decision
/// (ordered-delivery) traffic on the happy path.
#[test]
fn phase_breakdown_matches_each_protocols_cost_shape() {
    let votes = |proto| traced_run(proto, 47).phase_counts();

    let p2p = votes(ProtocolKind::PointToPoint);
    assert!(p2p.prepare > 0 && p2p.vote > 0 && p2p.ack > 0, "{p2p:?}");

    let reliable = votes(ProtocolKind::ReliableBcast);
    assert!(reliable.prepare > 0 && reliable.vote > 0, "{reliable:?}");

    let causal = votes(ProtocolKind::CausalBcast);
    assert_eq!(causal.vote, 0, "causal never votes: {causal:?}");
    assert!(causal.prepare > 0, "{causal:?}");

    let atomic = votes(ProtocolKind::AtomicBcast);
    assert_eq!(atomic.vote, 0, "atomic never votes: {atomic:?}");
    assert!(
        atomic.decision > 0,
        "atomic pays ordered-delivery traffic: {atomic:?}"
    );
}

/// Every event of a real execution survives the JSON-Lines round trip —
/// through the in-memory strings and through an actual [`JsonlSink`].
#[test]
fn trace_round_trips_through_jsonl() {
    let cluster = traced_run(ProtocolKind::AtomicBcast, 53);
    let events = cluster.trace_events();
    assert!(!events.is_empty());

    // String round trip.
    for ev in &events {
        let line = ev.to_jsonl();
        let back = TraceEvent::from_jsonl(&line)
            .unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        assert_eq!(&back, ev);
    }

    // Sink round trip: write all events to a buffer, read them back, and
    // re-run the invariant checker over the reconstruction.
    let mut sink = JsonlSink::new(Vec::new());
    for ev in &events {
        sink.record(ev);
    }
    let buf = sink.into_inner().expect("in-memory writer cannot fail");
    let reparsed: Vec<TraceEvent> = String::from_utf8(buf)
        .expect("utf8")
        .lines()
        .map(|l| TraceEvent::from_jsonl(l).expect("parse"))
        .collect();
    assert_eq!(reparsed, events);
    check_trace(&reparsed).expect("reconstructed trace stays clean");
}

/// A corrupted trace is rejected: injecting a delivery that was never sent
/// trips the checker, as does erasing a transaction's termination.
#[test]
fn corrupted_traces_are_rejected() {
    let cluster = traced_run(ProtocolKind::ReliableBcast, 59);
    let events = cluster.trace_events();
    check_trace(&events).expect("pristine trace passes");

    // Corruption 1: a phantom delivery on a link/phase with no sends.
    let mut phantom = events.clone();
    phantom.push(TraceEvent::Deliver {
        at: SimTime::ZERO,
        from: SiteId(0),
        to: SiteId(1),
        phase: Phase::Retransmit,
    });
    assert!(matches!(
        check_trace(&phantom),
        Err(TraceViolation::UnsentDelivery { .. })
    ));

    // Corruption 2: erase one transaction's commit/abort records.
    let victim = events
        .iter()
        .find_map(|ev| match ev {
            TraceEvent::Submit { txn, .. } => Some(*txn),
            _ => None,
        })
        .expect("a transaction was submitted");
    let unterminated: Vec<TraceEvent> = events
        .iter()
        .filter(|ev| {
            !matches!(ev,
                TraceEvent::Commit { site, txn, .. } | TraceEvent::Abort { site, txn, .. }
                    if *txn == victim && *site == victim.origin)
        })
        .cloned()
        .collect();
    assert!(matches!(
        check_trace(&unterminated),
        Err(TraceViolation::MissingTermination { txn }) if txn == victim
    ));
}

/// A run with a site crash still passes: the recorded crash relaxes the
/// must-terminate invariant for the transactions the crash stranded.
#[test]
fn crashed_runs_pass_with_the_relaxed_termination_rule() {
    let mut cluster = Cluster::builder()
        .sites(5)
        .protocol(ProtocolKind::ReliableBcast)
        .membership(true)
        .suspect_after(SimDuration::from_millis(60))
        .trace(TRACE_CAPACITY)
        .seed(61)
        .build();
    for i in 0..6u64 {
        let site = SiteId((i % 5) as usize);
        cluster.submit_at(
            SimTime::from_micros(1_000 + i * 5_000),
            site,
            TxnSpec::new().read("k").write("k", i as i64),
        );
    }
    cluster.run_until(SimTime::from_micros(40_000));
    cluster.crash(SiteId(4));
    cluster.run_until(SimTime::from_micros(2_000_000));
    cluster
        .check_trace_invariants()
        .expect("crash relaxes termination");
    assert!(cluster
        .trace_events()
        .iter()
        .any(|ev| matches!(ev, TraceEvent::Crash { site, .. } if *site == SiteId(4))));
}
