//! Partial replication — the extension the paper defers ("for simplicity
//! ... we assume that the database is fully replicated"). Keys live on a
//! deterministic subset of sites; broadcasts still reach everyone, but
//! only holders lock and install. Reads stay local, so transactions read
//! keys their origin holds.

use bcastdb::db::Key;
use bcastdb::prelude::*;
use bcastdb::protocols::{Placement, ProtocolKind};

fn ring2() -> Placement {
    Placement::Ring { replicas: 2 }
}

/// A write key every site may use freely; a read key must be held at the
/// origin.
fn readable_key(p: &Placement, site: SiteId, n: usize, salt: usize) -> String {
    (0..)
        .map(|i| format!("k{:03}", salt * 101 + i))
        .find(|k| p.is_holder(site, &Key::new(k.as_str()), n))
        .expect("some key is held locally")
}

#[test]
fn partial_replication_basic_commit_installs_at_holders_only() {
    for proto in ProtocolKind::ALL {
        let n = 5;
        let p = ring2();
        let mut c = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .placement(p)
            .seed(91)
            .build();
        let key = "k042";
        let id = c.submit(SiteId(0), TxnSpec::new().write(key, 7));
        c.run_to_quiescence();
        assert!(c.is_committed(id), "{proto}");
        let holders = p.holders(&Key::new(key), n);
        assert_eq!(holders.len(), 2);
        for s in c.sites().collect::<Vec<_>>() {
            let v = c.committed_value(s, key);
            if holders.contains(&s) {
                assert_eq!(v, Some(7), "{proto}: holder {s} missing the write");
            } else {
                assert_eq!(v, None, "{proto}: non-holder {s} installed the write");
            }
        }
        assert!(c.replicas_converged(), "{proto}");
    }
}

#[test]
fn partial_replication_contended_workload_stays_serializable() {
    let n = 4;
    let p = ring2();
    for proto in ProtocolKind::ALL {
        let mut c = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .placement(p)
            .seed(93)
            .build();
        // Hand-built workload: each site reads a local key and writes two
        // keys from a small contended pool (writes need no local copy).
        let mut submitted = 0u64;
        for round in 0..6u64 {
            for site in 0..n {
                let rk = readable_key(&p, SiteId(site), n, site);
                let w1 = format!("k{:03}", (round as usize * 7 + site) % 10);
                let w2 = format!("k{:03}", (round as usize * 3 + site + 1) % 10);
                if w1 == w2 {
                    continue;
                }
                let at = SimTime::from_micros(round * 4_000 + site as u64);
                c.submit_at(
                    at,
                    SiteId(site),
                    TxnSpec::new()
                        .read(rk.as_str())
                        .write(w1.as_str(), (round * 10 + site as u64) as i64)
                        .write(w2.as_str(), (round * 10 + site as u64) as i64),
                );
                submitted += 1;
            }
        }
        let out = c.run_to_quiescence();
        assert!(
            matches!(out, bcastdb::sim::RunOutcome::Quiesced { .. }),
            "{proto}: wedged"
        );
        let m = c.metrics();
        assert_eq!(
            m.commits() + m.aborts(),
            submitted,
            "{proto}: transactions lost"
        );
        assert!(c.replicas_converged(), "{proto}: holders diverged");
        c.check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}

#[test]
fn partial_replication_single_copy_keys() {
    // replicas = 1: every key has exactly one home; cross-site writes still
    // commit through the full protocol stack.
    let n = 3;
    let p = Placement::Ring { replicas: 1 };
    for proto in [ProtocolKind::ReliableBcast, ProtocolKind::AtomicBcast] {
        let mut c = Cluster::builder()
            .sites(n)
            .protocol(proto)
            .placement(p)
            .seed(97)
            .build();
        let mut ids = Vec::new();
        for i in 0..9u64 {
            let key = format!("k{:03}", i);
            let site = SiteId((i % 3) as usize);
            ids.push(c.submit_at(
                SimTime::from_micros(i * 5_000),
                site,
                TxnSpec::new().write(key.as_str(), i as i64),
            ));
        }
        c.run_to_quiescence();
        for id in &ids {
            assert!(c.is_committed(*id), "{proto}: {id}");
        }
        // Each key readable exactly at its single holder.
        for i in 0..9u64 {
            let key = format!("k{:03}", i);
            let holders = p.holders(&Key::new(key.as_str()), n);
            assert_eq!(holders.len(), 1);
            let h = *holders.iter().next().expect("one holder");
            assert_eq!(
                c.committed_value(h, key.as_str()),
                Some(i as i64),
                "{proto}"
            );
        }
        c.check_serializability()
            .unwrap_or_else(|v| panic!("{proto}: {v}"));
    }
}
