//! Property-based end-to-end testing: for *any* protocol, seed, cluster
//! size, and workload shape (within bounded ranges), a run must
//!
//! 1. quiesce (no protocol ever wedges),
//! 2. terminate every submitted transaction,
//! 3. converge all replicas to identical committed state, and
//! 4. produce a one-copy serializable history.
//!
//! This is the paper's correctness theorem turned into an executable
//! property over randomized executions.

use bcastdb::prelude::*;
use bcastdb::protocols::ProtocolKind;
use bcastdb::workload::WorkloadConfig;
use proptest::prelude::*;

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::PointToPoint),
        Just(ProtocolKind::ReliableBcast),
        Just(ProtocolKind::CausalBcast),
        Just(ProtocolKind::AtomicBcast),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 0, // each case is a full simulation; don't shrink
    })]

    #[test]
    fn every_random_run_is_serializable(
        proto in protocol_strategy(),
        sites in 2usize..6,
        seed in 0u64..1_000,
        n_keys in 3usize..60,
        theta in 0.0f64..1.2,
        writes in 1usize..4,
        reads in 0usize..3,
        ro_frac in 0.0f64..0.8,
        txns_per_site in 3usize..10,
        gap_us in 200u64..20_000,
    ) {
        let cfg = WorkloadConfig {
            n_keys,
            theta,
            reads_per_txn: reads,
            writes_per_txn: writes,
            reads_per_ro_txn: 3,
            readonly_fraction: ro_frac,
        };
        let mut cluster = Cluster::builder()
            .sites(sites)
            .protocol(proto)
            .seed(seed)
            .build();
        let run = WorkloadRun::new(cfg, seed ^ 0xABCD);
        let report = run.open_loop(
            &mut cluster,
            txns_per_site,
            SimDuration::from_micros(gap_us),
        );
        prop_assert!(report.quiesced, "{proto}: did not quiesce");
        prop_assert!(report.converged, "{proto}: replicas diverged");
        prop_assert_eq!(
            report.metrics.commits() + report.metrics.aborts(),
            (sites * txns_per_site) as u64,
            "{}: transactions lost", proto
        );
        if let Err(v) = cluster.check_serializability() {
            return Err(TestCaseError::fail(format!("{proto}: {v}")));
        }
    }
}
