//! # bcastdb
//!
//! A replicated database built on broadcast primitives — a full Rust
//! reproduction of *"Using Broadcast Primitives in Replicated Databases"*
//! (I. Stanoi, D. Agrawal, A. El Abbadi — ICDCS 1998).
//!
//! The paper shows how progressively stronger broadcast primitives simplify
//! transaction commitment in a fully replicated database:
//!
//! 1. **Reliable broadcast** ([`protocols::ProtocolKind::ReliableBcast`]) —
//!    write operations are reliably broadcast; commitment needs a
//!    decentralized two-phase commit, but the protocol prevents deadlocks.
//! 2. **Causal broadcast** ([`protocols::ProtocolKind::CausalBcast`]) — the
//!    causal delivery order carries *implicit* acknowledgements, eliminating
//!    explicit YES votes.
//! 3. **Atomic broadcast** ([`protocols::ProtocolKind::AtomicBcast`]) —
//!    totally ordered commit requests make the commit decision
//!    deterministic at every site: *no* acknowledgements at all.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`sim`] — deterministic discrete-event simulator and network,
//! - [`broadcast`] — reliable / FIFO / causal / atomic broadcast and
//!   group membership,
//! - [`db`] — single-site database substrate (storage, strict 2PL,
//!   logging, serializability checking),
//! - [`protocols`] — the four replication protocols and the cluster API,
//! - [`workload`] — workload generators and experiment scenarios.
//!
//! # Quickstart
//!
//! ```
//! use bcastdb::prelude::*;
//!
//! // A 3-replica cluster running the atomic-broadcast protocol.
//! let mut cluster = Cluster::builder()
//!     .sites(3)
//!     .protocol(ProtocolKind::AtomicBcast)
//!     .seed(42)
//!     .build();
//!
//! // Run one update transaction at site 0: read x, write x := 7.
//! let txn = TxnSpec::new().read("x").write("x", 7);
//! let id = cluster.submit(SiteId(0), txn);
//! cluster.run_to_quiescence();
//!
//! assert!(cluster.is_committed(id));
//! // Every replica converged to the same value.
//! for site in cluster.sites() {
//!     assert_eq!(cluster.committed_value(site, "x"), Some(7));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bcastdb_broadcast as broadcast;
pub use bcastdb_core as protocols;
pub use bcastdb_db as db;
pub use bcastdb_sim as sim;
pub use bcastdb_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use bcastdb_core::{
        Cluster, ClusterBuilder, Placement, ProtocolKind, TxnId, TxnOutcome, TxnSpec,
    };
    pub use bcastdb_db::Key;
    pub use bcastdb_sim::telemetry::{Phase, PhaseCounts, TraceEvent, TraceViolation};
    pub use bcastdb_sim::{SimDuration, SimTime, SiteId};
    pub use bcastdb_workload::{WorkloadConfig, WorkloadRun};
}
